#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/year_loss_table.hpp"
#include "core/ylt_sink.hpp"
#include "shard/shard_store.hpp"

namespace are::shard {

/// Out-of-core Year Loss Table: losses live in fixed trial-range shards
/// behind a ShardStore with a memory budget, so analyses whose full
/// trials x layers table would not fit in memory still run — cold shards
/// spill to disk and fault back on access. Shard i owns trials
/// [i * shard_trials, min((i+1) * shard_trials, num_trials)); within a
/// shard the buffer is layer-major (layer 0's trials, then layer 1's, ...),
/// mirroring the materialized YearLossTable so a shard scan is the same
/// contiguous layer-row walk the metrics already do.
class ShardedYearLossTable {
 public:
  ShardedYearLossTable(std::vector<std::uint32_t> layer_ids, std::uint64_t num_trials,
                       std::uint64_t shard_trials, ShardStoreConfig store_config = {});

  /// Movable (the store lives behind a pointer: a mutex guards its
  /// metadata), not copyable. Outstanding ShardViews pin the store, so
  /// move only between runs.
  ShardedYearLossTable(ShardedYearLossTable&&) = default;
  ShardedYearLossTable& operator=(ShardedYearLossTable&&) = default;

  std::size_t num_layers() const noexcept { return layer_ids_.size(); }
  std::uint64_t num_trials() const noexcept { return num_trials_; }
  std::uint64_t shard_trials() const noexcept { return shard_trials_; }
  std::size_t num_shards() const noexcept { return store_->num_shards(); }
  std::span<const std::uint32_t> layer_ids() const noexcept { return layer_ids_; }

  std::uint64_t shard_begin(std::size_t shard_index) const noexcept {
    return static_cast<std::uint64_t>(shard_index) * shard_trials_;
  }
  std::uint64_t shard_end(std::size_t shard_index) const noexcept {
    const std::uint64_t end = shard_begin(shard_index) + shard_trials_;
    return end < num_trials_ ? end : num_trials_;
  }

  /// A pinned view of one shard: layer rows of shard_end - shard_begin
  /// trials each. Holding it keeps the shard resident; drop it promptly so
  /// the store can stay under budget.
  class ShardView {
   public:
    std::uint64_t trial_begin() const noexcept { return trial_begin_; }
    std::size_t trials() const noexcept { return trials_; }

    std::span<double> layer_losses(std::size_t layer_index) noexcept {
      return pin_.data().subspan(layer_index * trials_, trials_);
    }
    std::span<const double> layer_losses(std::size_t layer_index) const noexcept {
      return pin_.data().subspan(layer_index * trials_, trials_);
    }

   private:
    friend class ShardedYearLossTable;
    ShardView(ShardStore::Pin pin, std::uint64_t trial_begin, std::size_t trials)
        : pin_(std::move(pin)), trial_begin_(trial_begin), trials_(trials) {}

    ShardStore::Pin pin_;
    std::uint64_t trial_begin_ = 0;
    std::size_t trials_ = 0;
  };

  /// Pins shard `shard_index` (faulting it back from disk if it was
  /// spilled). Thread-safe; concurrent writers to the same shard must
  /// target disjoint trial ranges.
  ShardView shard(std::size_t shard_index);

  /// Copies one layer's losses for [trial_begin, trial_begin + n) into the
  /// owning shard. The range must lie within one shard (YltSink contract).
  void write(std::size_t layer_index, std::uint64_t trial_begin, std::span<const double> losses);

  /// Streams every shard in trial order through `fn(view)` — the shard-wise
  /// reduction primitive. Each shard is released before the next is pinned,
  /// so peak residency is one shard regardless of table size.
  template <typename Fn>
  void for_each_shard(Fn&& fn) {
    for (std::size_t i = 0; i < num_shards(); ++i) {
      ShardView view = shard(i);
      fn(view);
    }
  }

  /// Assembles the monolithic YearLossTable (tests and small tables only —
  /// this is exactly the allocation sharding exists to avoid).
  core::YearLossTable materialize();

  ShardStoreStats stats() const { return store_->stats(); }
  const std::filesystem::path& spill_dir() const noexcept { return store_->spill_dir(); }

 private:
  static std::vector<std::size_t> shard_sizes(std::size_t num_layers, std::uint64_t num_trials,
                                              std::uint64_t shard_trials);

  std::vector<std::uint32_t> layer_ids_;
  std::uint64_t num_trials_ = 0;
  std::uint64_t shard_trials_ = 0;
  std::unique_ptr<ShardStore> store_;
};

/// YltSink over a ShardedYearLossTable: engines emit finished trial-range
/// blocks straight into the owning shard, so no monolithic buffer ever
/// exists. block_trials() advertises the shard size; the fused engine
/// aligns its tile boundaries to it and writes each finished tile directly
/// into exactly one shard.
class ShardedYltSink final : public core::YltSink {
 public:
  explicit ShardedYltSink(ShardedYearLossTable& table) : table_(table) {}

  void emit(std::size_t layer_index, std::uint64_t trial_begin,
            std::span<const double> losses) override {
    table_.write(layer_index, trial_begin, losses);
  }

  std::uint64_t block_trials() const noexcept override { return table_.shard_trials(); }

 private:
  ShardedYearLossTable& table_;
};

}  // namespace are::shard
