#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace are::shard {

/// Placement policy for shard buffers.
struct ShardStoreConfig {
  /// Resident-buffer budget in bytes; 0 = unlimited (nothing ever spills).
  /// Pinned shards are exempt — the store may run over budget while a
  /// writer/reader holds a pin, and evicts back under budget on the next
  /// pin() (releases themselves never evict).
  std::size_t memory_budget_bytes = 0;

  /// Base directory for spill files. Each store spills into its own unique
  /// subdirectory of this (or of the system temp dir when empty), one
  /// checksummed binary file per spilled shard — see io::write_shard_binary
  /// — so concurrent runs sharing a base dir never collide. Created on
  /// first spill; the subdirectory and its files are removed by the
  /// store's destructor.
  std::string spill_dir;
};

/// Observability counters, stable across pin/release cycles.
struct ShardStoreStats {
  std::uint64_t spills = 0;       ///< shard buffers written out to disk
  std::uint64_t faults = 0;       ///< shard buffers restored from disk
  std::uint64_t quarantined = 0;  ///< spill files set aside after checksum failure
  std::size_t resident_bytes = 0;
  std::size_t peak_resident_bytes = 0;
};

/// Bounded-memory home for a fixed set of equal-role buffers ("shards").
/// Shards start life virtually zero-filled (allocating nothing until first
/// pinned), stay resident while the budget allows, and spill least-recently
/// -used to disk when it does not; pinning a spilled shard transparently
/// faults it back. All metadata operations are thread-safe; the data bytes
/// behind a pin are the caller's to synchronise (the sharded YLT writes
/// disjoint ranges from concurrent workers, which needs no locking).
class ShardStore {
 public:
  /// `shard_doubles[i]` is shard i's element count (the last trial-range
  /// shard of a YLT is usually ragged).
  ShardStore(std::vector<std::size_t> shard_doubles, ShardStoreConfig config);
  ~ShardStore();

  ShardStore(const ShardStore&) = delete;
  ShardStore& operator=(const ShardStore&) = delete;

  /// RAII pin: the shard is resident and cannot be evicted while any Pin on
  /// it lives. Movable, not copyable.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept : store_(other.store_), index_(other.index_) {
      other.store_ = nullptr;
    }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        store_ = other.store_;
        index_ = other.index_;
        other.store_ = nullptr;
      }
      return *this;
    }
    ~Pin() { release(); }

    std::span<double> data() const noexcept;
    explicit operator bool() const noexcept { return store_ != nullptr; }

   private:
    friend class ShardStore;
    Pin(ShardStore* store, std::size_t index) : store_(store), index_(index) {}
    void release() noexcept;

    ShardStore* store_ = nullptr;
    std::size_t index_ = 0;
  };

  /// Faults the shard in (allocating zeros on first touch, reading the
  /// spill file after an eviction) and pins it. May evict other, unpinned
  /// shards to get back under budget. Disk transfers (spill writes, fault
  /// reads) happen with the store mutex *released* — the shard in
  /// transition is marked and other threads pin other shards concurrently,
  /// so worker emits no longer serialise on a neighbour's I/O under memory
  /// pressure.
  ///
  /// Failure taxonomy (all derive from std::runtime_error):
  ///   core::StatusError(kSpillFailure)    an eviction's spill write failed
  ///                                       (ENOSPC, injected fault); the
  ///                                       victim is rolled back to residency
  ///   core::StatusError(kDataCorruption)  this shard's spill file failed its
  ///                                       checksum — the file is quarantined
  ///                                       (renamed *.quarantined) and every
  ///                                       later pin() throws the same code
  ///                                       until discard() resets the shard
  Pin pin(std::size_t shard_index);

  /// Drops a shard back to the virtually-zero state: buffer freed, spill
  /// and quarantine files removed, quarantine flag cleared. The recompute
  /// half of the corrupt-shard fallback — the owner re-runs the trial
  /// ranges that produced the shard, or rejects the request. Requires the
  /// shard to be unpinned.
  void discard(std::size_t shard_index);

  std::size_t num_shards() const noexcept { return shards_.size(); }
  std::size_t shard_doubles(std::size_t shard_index) const noexcept {
    return shards_[shard_index].size_doubles;
  }
  ShardStoreStats stats() const;

  /// The directory spill files land in (resolved from the config; the
  /// default temp subdirectory is created lazily).
  const std::filesystem::path& spill_dir() const noexcept { return spill_dir_; }

 private:
  enum class State : std::uint8_t {
    kZero,      ///< never materialised: logically all zeros, no buffer, no file
    kResident,  ///< buffer in memory (a spill file from an earlier eviction may exist)
    kSpilled,   ///< buffer on disk only
  };

  struct Shard {
    std::size_t size_doubles = 0;
    State state = State::kZero;
    // Raw array, not vector: a fault from disk fills every byte from the
    // spill file, so the buffer is allocated uninitialised (only a
    // first-touch kZero fault pays the zero fill).
    std::unique_ptr<double[]> buffer;
    std::uint32_t pins = 0;
    std::uint64_t last_use = 0;  // LRU clock value at last pin
    /// Spill write / fault read in flight with the store mutex released.
    /// While set the shard is untouchable: pin() waits on io_done_, and
    /// eviction never selects it (it is not kResident during the window).
    bool io_in_progress = false;
    /// The spill file failed its checksum; pin() rejects with
    /// kDataCorruption until discard() clears the flag.
    bool quarantined = false;
  };

  // Both require lock_ held on entry and may release it around disk I/O
  // (the unique_lock is re-acquired before returning or throwing).
  void fault_in(std::unique_lock<std::mutex>& lock, std::size_t shard_index);
  void evict_over_budget(std::unique_lock<std::mutex>& lock, std::size_t protect_index);
  // Require lock_ held throughout.
  std::filesystem::path shard_path(std::size_t shard_index) const;
  void ensure_spill_dir();
  /// Removes shard_*.bin.tmp debris a crashed predecessor left under
  /// `base` (spill writes land in a tmp file until renamed, so a *.tmp is
  /// by definition incomplete). Called from the constructor for configured
  /// spill dirs; best-effort, never throws.
  static void sweep_orphaned_tmp(const std::filesystem::path& base) noexcept;

  mutable std::mutex lock_;
  std::condition_variable io_done_;
  std::vector<Shard> shards_;
  ShardStoreConfig config_;
  std::filesystem::path spill_dir_;
  bool owns_spill_dir_ = false;   // we created it -> destructor removes it
  bool spill_dir_ready_ = false;  // directory exists on disk
  std::uint64_t clock_ = 0;
  ShardStoreStats stats_;
};

}  // namespace are::shard
