#include "shard/shard_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <exception>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>
#include <utility>

#include "core/status.hpp"
#include "fault/fault_injection.hpp"
#include "io/binary.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace are::shard {

namespace {

std::size_t bytes_of(std::size_t doubles) { return doubles * sizeof(double); }

/// Registry mirrors of ShardStoreStats, shared by every store in the
/// process (the per-store struct stays the per-instance view). Updated at
/// spill/fault granularity — disk I/O dwarfs the counter cost.
struct StoreCounters {
  obs::Counter& spills;
  obs::Counter& faults;
  obs::Counter& quarantined;
  obs::Counter& bytes_spilled;
  obs::Counter& bytes_faulted;
  obs::Gauge& resident_bytes;
  obs::Gauge& peak_resident_bytes;

  static StoreCounters& get() {
    static StoreCounters counters{
        obs::TelemetryRegistry::global().counter("shard.spills"),
        obs::TelemetryRegistry::global().counter("shard.faults"),
        obs::TelemetryRegistry::global().counter("shard.quarantined"),
        obs::TelemetryRegistry::global().counter("shard.bytes_spilled"),
        obs::TelemetryRegistry::global().counter("shard.bytes_faulted"),
        obs::TelemetryRegistry::global().gauge("shard.resident_bytes"),
        obs::TelemetryRegistry::global().gauge("shard.peak_resident_bytes"),
    };
    return counters;
  }
};

/// Unique default spill-dir name: pid + process-wide counter, so concurrent
/// analyses (in this process or another on the same box) can never share a
/// directory and fault back each other's shards.
std::string unique_spill_dir_name() {
  static std::atomic<std::uint64_t> counter{0};
  return "are_ylt_shards_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

[[noreturn]] void throw_spill(const std::string& message) {
  throw core::StatusError(core::StatusCode::kSpillFailure, message);
}

/// Crash-safe shard write: the payload lands in `<path>.tmp`, is fsynced,
/// and only then renamed over `path`. A crash or write failure at any point
/// leaves either the previous complete file or removable *.tmp debris —
/// never a truncated shard_<i>.bin that a later fault-in would half-read.
void write_shard_durable(const std::filesystem::path& path, std::span<const double> values,
                         std::size_t shard_index, const std::filesystem::path& spill_dir) {
  if (fault::should_inject(fault::sites::kShardSpillWrite)) {
    throw_spill("injected fault: shard.spill_write (shard " + std::to_string(shard_index) + ")");
  }
  const std::filesystem::path tmp = path.string() + ".tmp";
  std::error_code discard_error;
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw_spill("shard store: cannot open spill file for shard " +
                    std::to_string(shard_index) + " under " + spill_dir.string());
      }
      io::write_shard_binary(out, values);
      out.flush();
      if (!out) {
        throw_spill("shard store: short write spilling shard " + std::to_string(shard_index));
      }
    }
    const int fd = ::open(tmp.c_str(), O_WRONLY);
    if (fd < 0) throw_spill("shard store: cannot reopen spill tmp for fsync: " + tmp.string());
    const int synced = ::fsync(fd);
    ::close(fd);
    if (synced != 0) throw_spill("shard store: fsync failed spilling shard " +
                                 std::to_string(shard_index));
    std::error_code error;
    std::filesystem::rename(tmp, path, error);
    if (error) {
      throw_spill("shard store: cannot commit spill file for shard " +
                  std::to_string(shard_index) + ": " + error.message());
    }
  } catch (...) {
    std::filesystem::remove(tmp, discard_error);
    throw;
  }
}

}  // namespace

ShardStore::ShardStore(std::vector<std::size_t> shard_doubles, ShardStoreConfig config)
    : config_(std::move(config)) {
  shards_.resize(shard_doubles.size());
  for (std::size_t i = 0; i < shard_doubles.size(); ++i) {
    shards_[i].size_doubles = shard_doubles[i];
  }
  // The spill directory is resolved lazily in ensure_spill_dir(): a store
  // that never spills must not touch the filesystem at all. A *configured*
  // base dir is the exception: it is where a crashed predecessor's *.tmp
  // debris would live, so sweep it now (stores on the default system temp
  // dir keep the no-touch invariant — their debris is pid-scoped anyway).
  if (!config_.spill_dir.empty()) sweep_orphaned_tmp(config_.spill_dir);
}

void ShardStore::sweep_orphaned_tmp(const std::filesystem::path& base) noexcept {
  std::error_code error;
  std::filesystem::recursive_directory_iterator it(
      base, std::filesystem::directory_options::skip_permission_denied, error);
  if (error) return;
  for (std::filesystem::recursive_directory_iterator end; it != end; it.increment(error)) {
    if (error) return;
    const std::filesystem::path& path = it->path();
    const std::string name = path.filename().string();
    if (name.rfind("shard_", 0) == 0 && name.size() > 8 &&
        name.compare(name.size() - 8, 8, ".bin.tmp") == 0) {
      std::filesystem::remove(path, error);
    }
  }
}

ShardStore::~ShardStore() {
  std::error_code ignored;
  if (owns_spill_dir_) {
    // remove_all, not per-file remove: a spill that died mid-write or a
    // quarantined corrupt shard leaves *.tmp / *.quarantined files beside
    // the shard_<i>.bin set, and a plain remove of a non-empty directory
    // would silently leak the whole tree.
    std::filesystem::remove_all(spill_dir_, ignored);
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::filesystem::remove(shard_path(i), ignored);
    }
  }
}

std::span<double> ShardStore::Pin::data() const noexcept {
  Shard& shard = store_->shards_[index_];
  return {shard.buffer.get(), shard.size_doubles};
}

void ShardStore::Pin::release() noexcept {
  if (store_ == nullptr) return;
  std::lock_guard<std::mutex> guard(store_->lock_);
  --store_->shards_[index_].pins;
  store_ = nullptr;
}

ShardStore::Pin ShardStore::pin(std::size_t shard_index) {
  std::unique_lock<std::mutex> lock(lock_);
  // Wait out any in-flight spill or fault of THIS shard by another thread;
  // I/O on other shards proceeds concurrently (that is the point).
  io_done_.wait(lock, [&] { return !shards_[shard_index].io_in_progress; });
  if (shards_[shard_index].quarantined) {
    throw core::StatusError(core::StatusCode::kDataCorruption,
                            "shard store: shard " + std::to_string(shard_index) +
                                " is quarantined after a checksum failure; discard() to recompute");
  }
  fault_in(lock, shard_index);
  Shard& shard = shards_[shard_index];
  // Incremented before eviction so the target stays protected while the
  // budget loop releases the lock around victim writes; if a spill fails,
  // no Pin is ever handed out, so the count must be rolled back here.
  ++shard.pins;
  shard.last_use = ++clock_;
  try {
    evict_over_budget(lock, shard_index);
  } catch (...) {
    --shards_[shard_index].pins;
    throw;
  }
  return Pin(this, shard_index);
}

ShardStoreStats ShardStore::stats() const {
  std::lock_guard<std::mutex> guard(lock_);
  return stats_;
}

void ShardStore::discard(std::size_t shard_index) {
  std::unique_lock<std::mutex> lock(lock_);
  io_done_.wait(lock, [&] { return !shards_[shard_index].io_in_progress; });
  Shard& shard = shards_[shard_index];
  if (shard.pins != 0) {
    throw std::logic_error("shard store: discard of pinned shard " + std::to_string(shard_index));
  }
  if (shard.state == State::kResident) {
    stats_.resident_bytes -= bytes_of(shard.size_doubles);
    if (obs::enabled()) {
      StoreCounters::get().resident_bytes.add(
          -static_cast<std::int64_t>(bytes_of(shard.size_doubles)));
    }
  }
  shard.buffer.reset();
  shard.state = State::kZero;
  shard.quarantined = false;
  const std::filesystem::path path = shard_path(shard_index);
  if (!path.empty()) {
    std::error_code ignored;
    std::filesystem::remove(path, ignored);
    std::filesystem::remove(path.string() + ".quarantined", ignored);
  }
}

void ShardStore::fault_in(std::unique_lock<std::mutex>& lock, std::size_t shard_index) {
  Shard& shard = shards_[shard_index];
  if (shard.state == State::kResident) return;

  // The disk read (and the large allocation / zero fill) happens with the
  // store mutex released: the shard is marked in-transition, so concurrent
  // pins of this shard wait on io_done_ while pins of other shards proceed.
  const State prior = shard.state;
  shard.io_in_progress = true;
  const std::filesystem::path path = shard_path(shard_index);
  const std::size_t doubles = shard.size_doubles;
  lock.unlock();

  // Anything thrown in the unlocked window (bad_alloc under the very
  // memory pressure this store targets, a checksum failure from the read)
  // must still clear io_in_progress under the lock, or every later pin()
  // of this shard would park on io_done_ forever.
  std::unique_ptr<double[]> buffer;
  std::exception_ptr failure;
  bool corrupt = false;
  try {
    if (prior == State::kSpilled) {
      obs::Span span("shard.fault", "shard");
      if (fault::should_inject(fault::sites::kShardFaultRead)) {
        throw core::StatusError(core::StatusCode::kIoError,
                                "injected fault: shard.fault_read (shard " +
                                    std::to_string(shard_index) + ")");
      }
      // The read fills every byte, so the buffer is allocated uninitialised.
      buffer = std::make_unique_for_overwrite<double[]>(doubles);
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        throw core::StatusError(core::StatusCode::kIoError,
                                "shard store: cannot reopen spill file for shard " +
                                    std::to_string(shard_index));
      }
      io::read_shard_binary(in, {buffer.get(), doubles});
    } else {
      buffer = std::make_unique<double[]>(doubles);  // first touch: zeros
    }
  } catch (const core::StatusError& error) {
    corrupt = error.code() == core::StatusCode::kDataCorruption;
    failure = std::current_exception();
  } catch (...) {
    failure = std::current_exception();
  }

  lock.lock();
  shard.io_in_progress = false;
  io_done_.notify_all();
  if (failure) {
    if (corrupt) {
      // The spill file is provably bad (checksum/framing). Set it aside
      // under a name no fault-in will ever open — post-mortem evidence, not
      // a landmine — and flag the shard so later pins reject immediately
      // instead of re-reading garbage. discard() is the way back.
      std::error_code ignored;
      std::filesystem::rename(path, path.string() + ".quarantined", ignored);
      shard.quarantined = true;
      ++stats_.quarantined;
      if (obs::enabled()) StoreCounters::get().quarantined.increment();
    }
    std::rethrow_exception(failure);
  }
  shard.buffer = std::move(buffer);
  if (prior == State::kSpilled) ++stats_.faults;
  shard.state = State::kResident;
  stats_.resident_bytes += bytes_of(doubles);
  if (stats_.resident_bytes > stats_.peak_resident_bytes) {
    stats_.peak_resident_bytes = stats_.resident_bytes;
  }
  if (obs::enabled()) {
    StoreCounters& counters = StoreCounters::get();
    if (prior == State::kSpilled) {
      counters.faults.increment();
      counters.bytes_faulted.add(bytes_of(doubles));
    }
    // The registry gauges aggregate residency across every store in the
    // process (delta-based), unlike the per-instance stats_ fields.
    counters.resident_bytes.add(static_cast<std::int64_t>(bytes_of(doubles)));
    counters.peak_resident_bytes.record_max(counters.resident_bytes.value());
  }
}

void ShardStore::evict_over_budget(std::unique_lock<std::mutex>& lock,
                                   std::size_t protect_index) {
  if (config_.memory_budget_bytes == 0) return;
  while (stats_.resident_bytes > config_.memory_budget_bytes) {
    // Least-recently-pinned resident shard that nobody holds. Shards whose
    // I/O is in flight are not kResident, so they are never re-selected.
    std::size_t victim = shards_.size();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Shard& shard = shards_[i];
      if (i == protect_index || shard.state != State::kResident || shard.pins != 0) continue;
      if (victim == shards_.size() || shard.last_use < shards_[victim].last_use) victim = i;
    }
    if (victim == shards_.size()) return;  // everything evictable is pinned

    // Detach the victim's buffer and write it out with the mutex released.
    // The bytes leave residency the moment the buffer detaches, so other
    // threads observe budget progress immediately; marking the victim
    // in-transition keeps pins of it parked on io_done_ until the write
    // lands (its state only becomes kSpilled then).
    ensure_spill_dir();
    Shard& shard = shards_[victim];
    shard.io_in_progress = true;
    shard.state = State::kSpilled;
    const std::filesystem::path path = shard_path(victim);
    std::unique_ptr<double[]> buffer = std::move(shard.buffer);
    const std::size_t doubles = shard.size_doubles;
    stats_.resident_bytes -= bytes_of(doubles);
    if (obs::enabled()) {
      StoreCounters::get().resident_bytes.add(-static_cast<std::int64_t>(bytes_of(doubles)));
    }
    lock.unlock();

    // As in fault_in: whatever the unlocked write throws, io_in_progress
    // must be cleared under the lock and the victim rolled back to
    // residency before the error propagates.
    std::exception_ptr failure;
    try {
      obs::Span span("shard.spill", "shard");
      write_shard_durable(path, {buffer.get(), doubles}, victim, spill_dir_);
    } catch (...) {
      failure = std::current_exception();
    }

    lock.lock();
    shard.io_in_progress = false;
    io_done_.notify_all();
    if (failure) {
      shard.buffer = std::move(buffer);
      shard.state = State::kResident;
      stats_.resident_bytes += bytes_of(doubles);
      if (obs::enabled()) {
        StoreCounters::get().resident_bytes.add(static_cast<std::int64_t>(bytes_of(doubles)));
      }
      std::rethrow_exception(failure);
    }
    ++stats_.spills;
    if (obs::enabled()) {
      StoreCounters& counters = StoreCounters::get();
      counters.spills.increment();
      counters.bytes_spilled.add(bytes_of(doubles));
    }
  }
}

std::filesystem::path ShardStore::shard_path(std::size_t shard_index) const {
  if (spill_dir_.empty()) return {};  // no spill has resolved the dir yet
  return spill_dir_ / ("shard_" + std::to_string(shard_index) + ".bin");
}

void ShardStore::ensure_spill_dir() {
  if (spill_dir_ready_) return;
  // Always a unique per-store subdirectory — under the configured dir or
  // the system temp dir — so shard files (fixed names, shard_<i>.bin) of
  // concurrent runs can never collide: a foreign same-index shard is a
  // well-formed, correctly-checksummed file the reader cannot reject.
  const std::filesystem::path base = config_.spill_dir.empty()
                                         ? std::filesystem::temp_directory_path()
                                         : std::filesystem::path(config_.spill_dir);
  spill_dir_ = base / unique_spill_dir_name();
  owns_spill_dir_ = true;
  std::error_code error;
  if (std::filesystem::create_directories(spill_dir_, error); error) {
    throw std::runtime_error("shard store: cannot create spill dir " + spill_dir_.string() +
                             ": " + error.message());
  }
  spill_dir_ready_ = true;
}

}  // namespace are::shard
