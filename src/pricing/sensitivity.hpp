#pragma once

#include <vector>

#include "core/engine.hpp"
#include "pricing/pricing.hpp"

namespace are::pricing {

/// Finite-difference sensitivities of a layer's quote to its contract
/// terms, computed with *common random numbers*: every bumped re-pricing
/// reuses the same pre-simulated YET, so sampling noise cancels in the
/// difference and the estimate is the derivative of the simulated surface
/// itself. This is what makes what-if pricing on a fixed YET (the paper's
/// "consistent lens" argument for pre-simulation) differentiable in
/// practice.
struct TermSensitivities {
  /// d premium / d occurrence retention (typically <= 0).
  double d_occurrence_retention = 0.0;
  /// d premium / d occurrence limit (>= 0 until the limit stops binding).
  double d_occurrence_limit = 0.0;
  /// d premium / d aggregate retention (<= 0).
  double d_aggregate_retention = 0.0;
  /// d premium / d aggregate limit (>= 0 until it stops binding).
  double d_aggregate_limit = 0.0;
  /// Quote at the base terms.
  Quote base;
};

struct SensitivityOptions {
  /// Relative bump applied to each finite term (absolute bump for zero
  /// terms): central differences around the base.
  double relative_bump = 0.01;
  double absolute_bump_floor = 1.0;
  PricingAssumptions assumptions;
};

/// Re-runs aggregate analysis for layer `layer_index` of `portfolio` with
/// each term bumped up and down, pricing every YLT with the same
/// assumptions. Unlimited (infinite) terms get zero sensitivity — bumping
/// infinity is meaningless.
TermSensitivities term_sensitivities(const core::Portfolio& portfolio,
                                     const yet::YearEventTable& yet_table,
                                     std::size_t layer_index,
                                     const SensitivityOptions& options = {});

}  // namespace are::pricing
