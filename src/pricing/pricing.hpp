#pragma once

#include <span>
#include <string>

#include "financial/terms.hpp"
#include "metrics/ep_curve.hpp"

namespace are::pricing {

/// Loadings applied on top of the pure premium when quoting a layer.
struct PricingAssumptions {
  /// Multiplier on the standard deviation of the annual ceded loss
  /// (volatility loading).
  double stddev_loading = 0.35;
  /// Weight on TVaR-based capital cost at `tvar_level` tail probability.
  double tvar_loading = 0.05;
  double tvar_level = 0.99;
  /// Expense ratio: premium is grossed up by 1 / (1 - expense_ratio).
  double expense_ratio = 0.15;
};

/// A priced quote for one layer, derived from its YLT column.
struct Quote {
  double expected_loss = 0.0;   // pure premium
  double stddev = 0.0;          // volatility of the annual ceded loss
  double tvar = 0.0;            // TVaR at the assumed level
  double technical_premium = 0.0;
  /// Rate on line: premium / occurrence limit (the market's unit price for
  /// capacity; undefined for unlimited layers, reported as 0).
  double rate_on_line = 0.0;
};

/// Prices a layer from its simulated annual ceded losses.
Quote price_layer(std::span<const double> trial_losses, const financial::LayerTerms& terms,
                  const PricingAssumptions& assumptions = {});

/// Renders a one-line underwriter summary (used by the real-time pricing
/// example).
std::string describe(const Quote& quote);

}  // namespace are::pricing
