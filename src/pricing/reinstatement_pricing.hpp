#pragma once

#include <span>

#include "financial/reinstatement.hpp"
#include "financial/terms.hpp"
#include "pricing/pricing.hpp"

namespace are::pricing {

/// Pricing a Cat XL layer with reinstatement provisions (paper reference
/// [18], Anderson & Dong): the ceded losses consume the limit, which is
/// bought back at reinstatement premium rates, so the contract's economics
/// are (losses out) vs (original premium + expected reinstatement premium
/// in). The market convention solves for the original premium P such that
///
///   P * (1 + E[premium_fraction(L)]) = risk-loaded expected loss,
///
/// where premium_fraction is the pro-rata reinstatement income per unit of
/// original premium for trial loss L.
struct ReinstatementQuote {
  Quote base;                          // quote ignoring reinstatement income
  double expected_premium_fraction = 0.0;  // E[reinstatement premium] / P
  double original_premium = 0.0;       // solved premium net of expected income
  double expected_reinstatement_income = 0.0;
  double effective_aggregate_limit = 0.0;
};

/// Prices a layer whose trial losses were produced under the provision's
/// implied aggregate limit ((count+1) * occurrence limit).
ReinstatementQuote price_with_reinstatements(std::span<const double> trial_losses,
                                             const financial::LayerTerms& terms,
                                             const financial::ReinstatementProvision& provision,
                                             const PricingAssumptions& assumptions = {});

/// Layer terms implied by a provision on top of per-occurrence terms: the
/// aggregate limit becomes (count+1) * occurrence limit.
financial::LayerTerms terms_with_reinstatements(
    const financial::LayerTerms& occurrence_terms,
    const financial::ReinstatementProvision& provision);

}  // namespace are::pricing
