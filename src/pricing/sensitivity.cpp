#include "pricing/sensitivity.hpp"

#include <cmath>
#include <stdexcept>

namespace are::pricing {

namespace {

double premium_at(const core::Portfolio& base, std::size_t layer_index,
                  const financial::LayerTerms& terms, const yet::YearEventTable& yet_table,
                  const PricingAssumptions& assumptions) {
  core::Portfolio bumped = base;
  bumped.layers[layer_index].terms = terms;
  const core::YearLossTable ylt = core::run_sequential(bumped, yet_table);
  return price_layer(ylt.layer_losses(layer_index), terms, assumptions).technical_premium;
}

/// Central difference d premium / d term for one term field, or 0 for
/// unlimited terms.
double central_difference(const core::Portfolio& portfolio, std::size_t layer_index,
                          const yet::YearEventTable& yet_table,
                          const SensitivityOptions& options, double financial::LayerTerms::*field) {
  const financial::LayerTerms base = portfolio.layers[layer_index].terms;
  const double value = base.*field;
  if (value == financial::kUnlimited) return 0.0;

  const double bump =
      std::max(std::abs(value) * options.relative_bump, options.absolute_bump_floor);

  financial::LayerTerms up = base;
  up.*field = value + bump;
  financial::LayerTerms down = base;
  down.*field = std::max(value - bump, 0.0);
  const double actual_width = (up.*field) - (down.*field);
  if (actual_width <= 0.0) return 0.0;

  const double premium_up =
      premium_at(portfolio, layer_index, up, yet_table, options.assumptions);
  const double premium_down =
      premium_at(portfolio, layer_index, down, yet_table, options.assumptions);
  return (premium_up - premium_down) / actual_width;
}

}  // namespace

TermSensitivities term_sensitivities(const core::Portfolio& portfolio,
                                     const yet::YearEventTable& yet_table,
                                     std::size_t layer_index,
                                     const SensitivityOptions& options) {
  if (layer_index >= portfolio.layers.size()) {
    throw std::invalid_argument("layer index out of range");
  }
  if (!(options.relative_bump > 0.0)) {
    throw std::invalid_argument("relative bump must be > 0");
  }

  TermSensitivities sensitivities;
  const core::YearLossTable base_ylt = core::run_sequential(portfolio, yet_table);
  sensitivities.base = price_layer(base_ylt.layer_losses(layer_index),
                                   portfolio.layers[layer_index].terms, options.assumptions);

  sensitivities.d_occurrence_retention = central_difference(
      portfolio, layer_index, yet_table, options, &financial::LayerTerms::occurrence_retention);
  sensitivities.d_occurrence_limit = central_difference(
      portfolio, layer_index, yet_table, options, &financial::LayerTerms::occurrence_limit);
  sensitivities.d_aggregate_retention = central_difference(
      portfolio, layer_index, yet_table, options, &financial::LayerTerms::aggregate_retention);
  sensitivities.d_aggregate_limit = central_difference(
      portfolio, layer_index, yet_table, options, &financial::LayerTerms::aggregate_limit);
  return sensitivities;
}

}  // namespace are::pricing
