#include "pricing/reinstatement_pricing.hpp"

#include <stdexcept>

namespace are::pricing {

financial::LayerTerms terms_with_reinstatements(
    const financial::LayerTerms& occurrence_terms,
    const financial::ReinstatementProvision& provision) {
  financial::LayerTerms terms = occurrence_terms;
  terms.aggregate_limit = provision.aggregate_limit(occurrence_terms.occurrence_limit);
  return terms;
}

ReinstatementQuote price_with_reinstatements(std::span<const double> trial_losses,
                                             const financial::LayerTerms& terms,
                                             const financial::ReinstatementProvision& provision,
                                             const PricingAssumptions& assumptions) {
  if (terms.occurrence_limit == financial::kUnlimited || terms.occurrence_limit <= 0.0) {
    throw std::invalid_argument(
        "reinstatement pricing needs a finite positive occurrence limit");
  }

  ReinstatementQuote quote;
  quote.base = price_layer(trial_losses, terms, assumptions);
  quote.effective_aggregate_limit = provision.aggregate_limit(terms.occurrence_limit);

  double fraction_sum = 0.0;
  for (const double loss : trial_losses) {
    fraction_sum += provision.premium_fraction(loss, terms.occurrence_limit);
  }
  quote.expected_premium_fraction =
      fraction_sum / static_cast<double>(trial_losses.size());

  // P * (1 + E[f]) = risk-loaded target  =>  P = target / (1 + E[f]).
  quote.original_premium =
      quote.base.technical_premium / (1.0 + quote.expected_premium_fraction);
  quote.expected_reinstatement_income =
      quote.original_premium * quote.expected_premium_fraction;
  return quote;
}

}  // namespace are::pricing
