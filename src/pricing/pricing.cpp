#include "pricing/pricing.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "metrics/statistics.hpp"

namespace are::pricing {

Quote price_layer(std::span<const double> trial_losses, const financial::LayerTerms& terms,
                  const PricingAssumptions& assumptions) {
  if (trial_losses.empty()) throw std::invalid_argument("cannot price a layer with no trials");
  if (!(assumptions.expense_ratio >= 0.0) || assumptions.expense_ratio >= 1.0) {
    throw std::invalid_argument("expense ratio must be in [0,1)");
  }

  const metrics::RunningStats stats = metrics::summarize(trial_losses);
  const metrics::EpCurve curve(trial_losses);

  Quote quote;
  quote.expected_loss = stats.mean();
  quote.stddev = stats.stddev();
  quote.tvar = curve.tail_value_at_risk(assumptions.tvar_level);

  const double risk_loaded = quote.expected_loss +
                             assumptions.stddev_loading * quote.stddev +
                             assumptions.tvar_loading * quote.tvar;
  quote.technical_premium = risk_loaded / (1.0 - assumptions.expense_ratio);

  if (terms.occurrence_limit != financial::kUnlimited && terms.occurrence_limit > 0.0) {
    quote.rate_on_line = quote.technical_premium / terms.occurrence_limit;
  }
  return quote;
}

std::string describe(const Quote& quote) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(0);
  out << "EL=" << quote.expected_loss << " sd=" << quote.stddev << " TVaR=" << quote.tvar
      << " premium=" << quote.technical_premium;
  if (quote.rate_on_line > 0.0) {
    out.precision(2);
    out << " ROL=" << 100.0 * quote.rate_on_line << "%";
  }
  return out.str();
}

}  // namespace are::pricing
