#include "fault/fault_injection.hpp"

#include <atomic>
#include <charconv>
#include <stdexcept>

#include "obs/telemetry.hpp"

namespace are::fault {
namespace {

std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::string_view trim(std::string_view text) noexcept {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) text.remove_suffix(1);
  return text;
}

std::uint64_t parse_count(std::string_view text, std::string_view spec) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || value == 0) {
    throw std::invalid_argument("bad fault trigger count in spec: " + std::string(spec));
  }
  return value;
}

}  // namespace

Trigger parse_trigger(std::string_view spec) {
  const std::string_view text = trim(spec);
  Trigger trigger;
  if (text == "never") return trigger;
  if (text == "always") {
    trigger.kind = Trigger::Kind::kAlways;
    return trigger;
  }
  if (text == "once") {
    trigger.kind = Trigger::Kind::kOnce;
    return trigger;
  }
  if (text.rfind("every:", 0) == 0) {
    trigger.kind = Trigger::Kind::kEveryNth;
    trigger.n = parse_count(text.substr(6), spec);
    return trigger;
  }
  if (text.rfind("after:", 0) == 0) {
    trigger.kind = Trigger::Kind::kAfterNth;
    trigger.n = parse_count(text.substr(6), spec);
    return trigger;
  }
  if (text.rfind("prob:", 0) == 0) {
    std::string_view rest = text.substr(5);
    std::string_view prob_text = rest;
    if (const auto colon = rest.find(':'); colon != std::string_view::npos) {
      prob_text = rest.substr(0, colon);
      trigger.seed = parse_count(rest.substr(colon + 1), spec);
    }
    // from_chars for double is spotty across libstdc++ versions; stod is fine
    // on this cold path.
    try {
      std::size_t consumed = 0;
      trigger.probability = std::stod(std::string(prob_text), &consumed);
      if (consumed != prob_text.size()) throw std::invalid_argument("trailing");
    } catch (const std::exception&) {
      throw std::invalid_argument("bad fault probability in spec: " + std::string(spec));
    }
    if (trigger.probability < 0.0 || trigger.probability > 1.0) {
      throw std::invalid_argument("fault probability out of [0,1] in spec: " + std::string(spec));
    }
    trigger.kind = Trigger::Kind::kProbability;
    return trigger;
  }
  throw std::invalid_argument("unrecognised fault trigger spec: " + std::string(spec));
}

bool trigger_fires(const Trigger& trigger, std::uint64_t site_hash, std::uint64_t hit) noexcept {
  switch (trigger.kind) {
    case Trigger::Kind::kNever: return false;
    case Trigger::Kind::kAlways: return true;
    case Trigger::Kind::kOnce: return hit == 1;
    case Trigger::Kind::kEveryNth: return trigger.n != 0 && hit % trigger.n == 0;
    case Trigger::Kind::kAfterNth: return hit > trigger.n;
    case Trigger::Kind::kProbability: {
      // Deterministic per (seed, site, hit): same arm spec, same firing
      // pattern, regardless of thread interleaving.
      const std::uint64_t mixed =
          splitmix64(trigger.seed ^ splitmix64(site_hash ^ splitmix64(hit)));
      const double uniform =
          static_cast<double>(mixed >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
      return uniform < trigger.probability;
    }
  }
  return false;
}

namespace detail {
std::atomic<std::uint64_t>& armed_count() noexcept {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

FaultRegistry& FaultRegistry::global() {
  static FaultRegistry registry;
  return registry;
}

void FaultRegistry::arm(std::string_view site, std::string_view spec) {
  const Trigger trigger = parse_trigger(spec);
  if (trigger.kind == Trigger::Kind::kNever) {
    disarm(site);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    sites_.emplace(std::string(site), Site{trigger, 0, 0});
    detail::armed_count().fetch_add(1, std::memory_order_relaxed);
  } else {
    it->second.trigger = trigger;
  }
}

void FaultRegistry::arm_from_list(std::string_view list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view entry = trim(list.substr(start, end - start));
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault entry is not SITE=SPEC: " + std::string(entry));
    }
    arm(trim(entry.substr(0, eq)), trim(entry.substr(eq + 1)));
  }
}

void FaultRegistry::disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end()) {
    sites_.erase(it);
    detail::armed_count().fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  detail::armed_count().fetch_sub(sites_.size(), std::memory_order_relaxed);
  sites_.clear();
}

bool FaultRegistry::should_inject(std::string_view site) {
  std::string counter_name;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sites_.find(site);
    if (it == sites_.end()) return false;
    Site& entry = it->second;
    ++entry.hits;
    if (!trigger_fires(entry.trigger, fnv1a(site), entry.hits)) return false;
    ++entry.injected;
    counter_name = "fault.injected." + std::string(site);
  }
  // Counter registration takes the registry's own lock; keep it outside ours.
  obs::TelemetryRegistry::global().counter(counter_name).add(1);
  return true;
}

std::uint64_t FaultRegistry::hits(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultRegistry::injected(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.injected;
}

std::vector<std::string> FaultRegistry::armed_sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

ScopedArm::ScopedArm(std::string_view list) {
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t end = list.find(',', start);
    if (end == std::string_view::npos) end = list.size();
    const std::string_view entry = trim(list.substr(start, end - start));
    start = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("fault entry is not SITE=SPEC: " + std::string(entry));
    }
    const std::string_view site = trim(entry.substr(0, eq));
    FaultRegistry::global().arm(site, trim(entry.substr(eq + 1)));
    armed_.emplace_back(site);
  }
}

ScopedArm::~ScopedArm() {
  for (const std::string& site : armed_) FaultRegistry::global().disarm(site);
}

}  // namespace are::fault
