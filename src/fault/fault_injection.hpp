#pragma once

// Deterministic, seedable fault injection — the chaos half of the failure
// hardening story. Production code declares named *sites* at the exact
// points where the real world fails (spill writes, shard fault-ins, binary
// I/O, kernel scratch allocation, the service socket loop); tests, CI, and
// operators arm those sites with triggers, and the hardened paths above
// them get exercised on demand instead of waiting for a full disk.
//
// Sites are armed with SITE=SPEC pairs:
//
//   shard.spill_write=always        fire on every hit
//   shard.spill_write=every:3       fire on hits 3, 6, 9, ...
//   io.read=after:10                fire on every hit past the 10th
//   io.read=once                    fire on the first hit only
//   kernel.alloc=prob:0.01          fire with probability 0.01 per hit,
//   kernel.alloc=prob:0.01:42         deterministically derived from the
//                                     (seed, site, hit index) triple — same
//                                     seed, same firing pattern, any thread
//                                     interleaving
//   shard.spill_write=never         disarm the site
//
// Sources, in the order a process applies them: the ARE_FAULT environment
// variable (comma-separated list, parsed by are_cli at startup),
// `are_cli --fault LIST` on any command, and AnalysisConfig::faults for
// API embedders (armed for the duration of one run()). Every fire bumps a
// per-site tally and the obs counter `fault.injected.<site>`, so chaos runs
// can assert exactly what they provoked.
//
// Cost when disarmed: one relaxed atomic load per site hit (armed() below)
// — the same gate discipline as obs::enabled(), so production hot paths pay
// nothing for the instrumentation.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace are::fault {

/// Canonical site names, so call sites and tests cannot drift apart.
namespace sites {
inline constexpr std::string_view kShardSpillWrite = "shard.spill_write";
inline constexpr std::string_view kShardFaultRead = "shard.fault_read";
inline constexpr std::string_view kShardCorruptRead = "shard.corrupt_read";
inline constexpr std::string_view kIoRead = "io.read";
inline constexpr std::string_view kIoWrite = "io.write";
inline constexpr std::string_view kKernelAlloc = "kernel.alloc";
inline constexpr std::string_view kServiceSocket = "service.socket";
}  // namespace sites

/// A parsed trigger spec (see the header comment for the grammar).
struct Trigger {
  enum class Kind : std::uint8_t { kNever, kAlways, kOnce, kEveryNth, kAfterNth, kProbability };
  Kind kind = Kind::kNever;
  std::uint64_t n = 0;       // every:N / after:N
  double probability = 0.0;  // prob:P
  std::uint64_t seed = 0;    // prob:P:SEED (0 = default stream)
};

/// Parses "always" / "never" / "once" / "every:N" / "after:N" /
/// "prob:P[:SEED]"; throws std::invalid_argument on anything else.
Trigger parse_trigger(std::string_view spec);

/// Pure trigger evaluation for hit number `hit` (1-based) at a site whose
/// name hashes to `site_hash` — exposed so determinism is testable without
/// the global registry.
bool trigger_fires(const Trigger& trigger, std::uint64_t site_hash, std::uint64_t hit) noexcept;

namespace detail {
std::atomic<std::uint64_t>& armed_count() noexcept;
}  // namespace detail

/// True when any site in the process is armed — the only check a disarmed
/// injection point performs.
inline bool armed() noexcept {
  return detail::armed_count().load(std::memory_order_relaxed) != 0;
}

/// Process-wide site registry. All methods are thread-safe.
class FaultRegistry {
 public:
  static FaultRegistry& global();

  /// Arms (or re-arms) one site. "never" disarms it.
  void arm(std::string_view site, std::string_view spec);
  /// Arms a comma-separated SITE=SPEC list ("a=always,b=every:3").
  /// Whitespace around entries is ignored; empty list is a no-op.
  void arm_from_list(std::string_view list);
  void disarm(std::string_view site);
  void disarm_all();

  /// Counts a hit at `site` and reports whether its trigger fires. Fires
  /// bump the site tally and the `fault.injected.<site>` obs counter.
  /// Unarmed sites return false (and still count hits once any site is
  /// armed — hit indices stay comparable across a chaos run).
  bool should_inject(std::string_view site);

  std::uint64_t hits(std::string_view site) const;
  std::uint64_t injected(std::string_view site) const;
  std::vector<std::string> armed_sites() const;

 private:
  struct Site {
    Trigger trigger;
    std::uint64_t hits = 0;
    std::uint64_t injected = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_;
};

/// The injection point: true when `site` is armed and its trigger fires.
inline bool should_inject(std::string_view site) {
  if (!armed()) return false;
  return FaultRegistry::global().should_inject(site);
}

/// RAII arming of a SITE=SPEC list (AnalysisConfig::faults): arms on
/// construction, disarms exactly those sites on destruction. Prior specs
/// for the same sites are not restored — scoped arming is for one-shot
/// runs, not nesting.
class ScopedArm {
 public:
  explicit ScopedArm(std::string_view list);
  ~ScopedArm();

  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  std::vector<std::string> armed_;
};

}  // namespace are::fault
