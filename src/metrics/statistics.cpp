#include "metrics/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace are::metrics {

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double quantile(std::span<const double> sorted_sample, double q) {
  if (sorted_sample.empty()) throw std::invalid_argument("quantile of an empty sample");
  if (!(q >= 0.0) || !(q <= 1.0)) throw std::invalid_argument("quantile level must be in [0,1]");
  const double h = q * static_cast<double>(sorted_sample.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted_sample.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted_sample[lo] + frac * (sorted_sample[hi] - sorted_sample[lo]);
}

double quantile_unsorted(std::span<const double> sample, double q) {
  std::vector<double> copy(sample.begin(), sample.end());
  std::sort(copy.begin(), copy.end());
  return quantile(copy, q);
}

double tail_value_at_risk(std::span<const double> sorted_sample, double q) {
  if (sorted_sample.empty()) throw std::invalid_argument("TVaR of an empty sample");
  const double var = quantile(sorted_sample, q);
  double sum = 0.0;
  std::size_t count = 0;
  for (auto it = sorted_sample.rbegin(); it != sorted_sample.rend() && *it >= var; ++it) {
    sum += *it;
    ++count;
  }
  return count == 0 ? var : sum / static_cast<double>(count);
}

RunningStats summarize(std::span<const double> sample) noexcept {
  RunningStats stats;
  for (double x : sample) stats.add(x);
  return stats;
}

}  // namespace are::metrics
