#include "metrics/event_response.hpp"

#include <algorithm>
#include <stdexcept>

namespace are::metrics {

double event_loss_for_layer(const core::Layer& layer, yet::EventId event) {
  double combined = 0.0;
  for (const core::LayerElt& layer_elt : layer.elts) {
    combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
  }
  return layer.terms.apply_occurrence(combined);
}

std::vector<double> event_losses(const core::Portfolio& portfolio, yet::EventId event) {
  std::vector<double> losses;
  losses.reserve(portfolio.layers.size());
  for (const core::Layer& layer : portfolio.layers) {
    losses.push_back(event_loss_for_layer(layer, event));
  }
  return losses;
}

std::vector<EventContribution> top_contributing_events(const core::Layer& layer,
                                                       const yet::YearEventTable& yet_table,
                                                       std::size_t catalog_size,
                                                       std::size_t top_n) {
  if (top_n == 0) return {};

  // Empirical occurrence counts over the YET.
  std::vector<std::uint64_t> counts(catalog_size, 0);
  for (const yet::EventId event : yet_table.events()) {
    if (event < catalog_size) ++counts[event];
  }

  const double trials = static_cast<double>(yet_table.num_trials());
  std::vector<EventContribution> contributions;
  for (std::size_t id = 0; id < catalog_size; ++id) {
    if (counts[id] == 0) continue;
    const auto event = static_cast<yet::EventId>(id);
    const double occurrence_loss = event_loss_for_layer(layer, event);
    if (occurrence_loss <= 0.0) continue;
    EventContribution contribution;
    contribution.event = event;
    contribution.occurrences = counts[id];
    contribution.occurrence_loss = occurrence_loss;
    contribution.expected_annual_loss =
        occurrence_loss * static_cast<double>(counts[id]) / trials;
    contributions.push_back(contribution);
  }

  const std::size_t keep = std::min(top_n, contributions.size());
  std::partial_sort(contributions.begin(), contributions.begin() + static_cast<std::ptrdiff_t>(keep),
                    contributions.end(),
                    [](const EventContribution& a, const EventContribution& b) {
                      return a.expected_annual_loss > b.expected_annual_loss;
                    });
  contributions.resize(keep);
  return contributions;
}

std::vector<std::size_t> trials_containing(const yet::YearEventTable& yet_table,
                                           yet::EventId event) {
  std::vector<std::size_t> trials;
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    const auto events = yet_table.trial_events(trial);
    if (std::find(events.begin(), events.end(), event) != events.end()) {
      trials.push_back(trial);
    }
  }
  return trials;
}

double conditional_expected_loss(const core::YearLossTable& ylt, std::size_t layer_index,
                                 const yet::YearEventTable& yet_table, yet::EventId event) {
  const std::vector<std::size_t> trials = trials_containing(yet_table, event);
  if (trials.empty()) {
    throw std::invalid_argument("event never occurs in the YET: no conditional view");
  }
  double sum = 0.0;
  for (const std::size_t trial : trials) sum += ylt.at(layer_index, trial);
  return sum / static_cast<double>(trials.size());
}

}  // namespace are::metrics
