#include "metrics/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/statistics.hpp"
#include "rng/stream.hpp"

namespace are::metrics {

double mean_standard_error(std::span<const double> losses) {
  if (losses.size() < 2) throw std::invalid_argument("standard error needs >= 2 samples");
  const RunningStats stats = summarize(losses);
  return stats.stddev() / std::sqrt(static_cast<double>(losses.size()));
}

namespace {

BootstrapInterval bootstrap_measure(std::span<const double> losses, int resamples,
                                    std::uint64_t seed, double full_estimate,
                                    const auto& measure) {
  if (losses.empty()) throw std::invalid_argument("bootstrap of an empty sample");
  if (resamples < 10) throw std::invalid_argument("need >= 10 bootstrap resamples");

  std::vector<double> resample(losses.size());
  std::vector<double> estimates;
  estimates.reserve(static_cast<std::size_t>(resamples));

  for (int r = 0; r < resamples; ++r) {
    rng::Stream stream(seed, /*stream_id=*/6, /*substream_id=*/static_cast<std::uint64_t>(r));
    for (auto& value : resample) {
      value = losses[stream.uniform_below(losses.size())];
    }
    std::sort(resample.begin(), resample.end());
    estimates.push_back(measure(resample));
  }
  std::sort(estimates.begin(), estimates.end());

  BootstrapInterval interval;
  interval.estimate = full_estimate;
  interval.lower = quantile(estimates, 0.025);
  interval.upper = quantile(estimates, 0.975);
  const double denom = std::max(std::abs(full_estimate), 1e-12);
  interval.half_width_relative = 0.5 * (interval.upper - interval.lower) / denom;
  return interval;
}

}  // namespace

BootstrapInterval bootstrap_quantile(std::span<const double> losses, double q, int resamples,
                                     std::uint64_t seed) {
  const double full = quantile_unsorted(losses, q);
  return bootstrap_measure(losses, resamples, seed, full,
                           [q](std::span<const double> sorted) { return quantile(sorted, q); });
}

BootstrapInterval bootstrap_tvar(std::span<const double> losses, double level, int resamples,
                                 std::uint64_t seed) {
  std::vector<double> sorted(losses.begin(), losses.end());
  std::sort(sorted.begin(), sorted.end());
  const double full = tail_value_at_risk(sorted, level);
  return bootstrap_measure(losses, resamples, seed, full,
                           [level](std::span<const double> resampled) {
                             return tail_value_at_risk(resampled, level);
                           });
}

std::vector<ConvergencePoint> quantile_convergence(std::span<const double> losses, double q,
                                                   std::size_t first_prefix) {
  if (losses.empty()) throw std::invalid_argument("convergence of an empty sample");
  if (first_prefix == 0) throw std::invalid_argument("first prefix must be > 0");

  std::vector<ConvergencePoint> points;
  for (std::size_t n = std::min(first_prefix, losses.size());; n = std::min(n * 2, losses.size())) {
    points.push_back({n, quantile_unsorted(losses.subspan(0, n), q)});
    if (n == losses.size()) break;
  }
  return points;
}

std::size_t trials_needed(std::span<const double> losses, double q, double tolerance) {
  if (!(tolerance > 0.0)) throw std::invalid_argument("tolerance must be > 0");
  const auto points = quantile_convergence(losses, q);
  const double full = points.back().estimate;
  const double denom = std::max(std::abs(full), 1e-12);

  // Find the earliest prefix from which *all* later estimates stay within
  // tolerance of the full-sample value.
  std::size_t needed = losses.size();
  for (auto it = points.rbegin(); it != points.rend(); ++it) {
    if (std::abs(it->estimate - full) / denom <= tolerance) {
      needed = it->trials;
    } else {
      break;
    }
  }
  return needed;
}

}  // namespace are::metrics
