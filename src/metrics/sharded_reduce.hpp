#pragma once

#include <cstddef>
#include <vector>

#include "metrics/ep_curve.hpp"
#include "metrics/statistics.hpp"
#include "shard/sharded_ylt.hpp"

namespace are::metrics {

/// Streaming shard-wise reductions over an out-of-core YLT: every function
/// visits the shards once, in trial order, faulting each back from disk at
/// most once and never holding more than one shard's *table* buffer plus
/// its own reduction state. The reduction state is O(1) for the stats and
/// O(num_trials) for the EP merge and portfolio sum — one layer-row's
/// worth of doubles, not the layers x trials table (for exact empirical
/// quantiles that row is irreducible). Results are bit-identical to the
/// same metric computed on the materialized table (the reductions
/// preserve both the value multiset and, where it matters — Welford,
/// portfolio accumulation — the exact trial visit order), so a sharded
/// analysis loses no numerical fidelity over an in-memory one.

/// Exact EP curve for one layer: each shard's losses become a sorted run,
/// and the runs are k-way merged into the ascending loss vector the curve
/// adopts. Peak transient state: the sorted runs plus the growing merged
/// vector, ~2 copies of the layer row (exhausted runs are freed as the
/// merge drains them). Feed the aggregate trial losses for an AEP curve;
/// the curve's quantiles/TVaR/mean equal EpCurve(materialized layer row)
/// bit-for-bit.
EpCurve ep_curve_sharded(shard::ShardedYearLossTable& table, std::size_t layer_index);

/// Streaming AAL/stddev/min/max for one layer: RunningStats fed in trial
/// order (shard by shard), bit-identical to summarize(materialized row).
RunningStats stats_sharded(shard::ShardedYearLossTable& table, std::size_t layer_index);

/// Portfolio-level trial losses (sum across layers per trial), accumulated
/// shard-wise in the same layer-then-trial order as
/// YearLossTable::portfolio_losses — bit-identical to it. The result is
/// one double per trial (the portfolio row a stop-loss EP curve needs),
/// not the full table.
std::vector<double> portfolio_losses_sharded(shard::ShardedYearLossTable& table);

}  // namespace are::metrics
