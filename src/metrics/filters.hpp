#pragma once

#include <span>
#include <vector>

#include "core/year_loss_table.hpp"

namespace are::metrics {

/// YLT filters — "then filters (financial functions) are applied on the
/// aggregate loss values" (paper §II-C). Each filter maps per-trial losses
/// to per-trial losses; they compose left-to-right via FilterChain.
///
/// These operate on the *output* side of the engine (post-aggregate-terms),
/// where enterprise risk management applies participations, currency
/// conversion, profit commissions and result caps before rolling layers up
/// into the corporate view.

/// y = scale * x (currency conversion, share/participation).
std::vector<double> filter_scale(std::span<const double> losses, double scale);

/// y = min(x, cap) (result cap / corridor top).
std::vector<double> filter_cap(std::span<const double> losses, double cap);

/// y = max(x - deductible, 0) (annual aggregate deductible applied post hoc).
std::vector<double> filter_excess(std::span<const double> losses, double deductible);

/// y = x if x >= threshold else 0 (reporting threshold / franchise).
std::vector<double> filter_franchise(std::span<const double> losses, double threshold);

/// Profit commission: cede back `rate` of the shortfall below `target` in
/// profitable years — y = x - rate * max(target - x, 0) is the *net cost*
/// view used when the YLT entry is a loss to the reinsurer.
std::vector<double> filter_profit_commission(std::span<const double> losses, double target,
                                             double rate);

/// A composable chain of the above, applied in order.
class FilterChain {
 public:
  FilterChain& scale(double factor);
  FilterChain& cap(double cap_value);
  FilterChain& excess(double deductible);
  FilterChain& franchise(double threshold);
  FilterChain& profit_commission(double target, double rate);

  std::vector<double> apply(std::span<const double> losses) const;

  /// Applies to one layer of a YLT in place.
  void apply_in_place(core::YearLossTable& ylt, std::size_t layer_index) const;

  std::size_t size() const noexcept { return steps_.size(); }

 private:
  struct Step {
    enum class Kind { kScale, kCap, kExcess, kFranchise, kProfitCommission } kind;
    double a = 0.0;
    double b = 0.0;
  };
  std::vector<Step> steps_;
};

}  // namespace are::metrics
