#include "metrics/sharded_reduce.hpp"

#include <algorithm>
#include <queue>

namespace are::metrics {

namespace {

/// One cursor into a sorted run for the k-way merge heap.
struct RunHead {
  double value;
  std::size_t run;
  std::size_t index;
};

struct RunHeadGreater {
  bool operator()(const RunHead& a, const RunHead& b) const noexcept { return a.value > b.value; }
};

}  // namespace

EpCurve ep_curve_sharded(shard::ShardedYearLossTable& table, std::size_t layer_index) {
  // Pass 1: one sorted run per shard (the shard is released — and so may
  // spill — before the next is faulted in).
  std::vector<std::vector<double>> runs;
  runs.reserve(table.num_shards());
  table.for_each_shard([&](shard::ShardedYearLossTable::ShardView& view) {
    const auto row = view.layer_losses(layer_index);
    runs.emplace_back(row.begin(), row.end());
    std::sort(runs.back().begin(), runs.back().end());
  });

  // Pass 2: k-way merge of the runs into one ascending vector. Same value
  // multiset as sorting the materialized row, hence the same sorted
  // sequence — the curve it feeds is bit-identical.
  std::priority_queue<RunHead, std::vector<RunHead>, RunHeadGreater> heap;
  for (std::size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.push({runs[r][0], r, 0});
  }
  std::vector<double> merged;
  merged.reserve(static_cast<std::size_t>(table.num_trials()));
  while (!heap.empty()) {
    const RunHead head = heap.top();
    heap.pop();
    merged.push_back(head.value);
    const std::size_t next = head.index + 1;
    if (next < runs[head.run].size()) {
      heap.push({runs[head.run][next], head.run, next});
    } else {
      // Free exhausted runs as the merge drains them, instead of holding
      // every run until the end.
      runs[head.run] = {};
    }
  }
  return EpCurve::from_sorted(std::move(merged));
}

RunningStats stats_sharded(shard::ShardedYearLossTable& table, std::size_t layer_index) {
  // Welford is visit-order dependent; shards in trial order reproduce the
  // materialized row's scan order exactly.
  RunningStats stats;
  table.for_each_shard([&](shard::ShardedYearLossTable::ShardView& view) {
    for (const double loss : view.layer_losses(layer_index)) stats.add(loss);
  });
  return stats;
}

std::vector<double> portfolio_losses_sharded(shard::ShardedYearLossTable& table) {
  std::vector<double> total(static_cast<std::size_t>(table.num_trials()), 0.0);
  table.for_each_shard([&](shard::ShardedYearLossTable::ShardView& view) {
    for (std::size_t layer = 0; layer < table.num_layers(); ++layer) {
      const auto row = view.layer_losses(layer);
      double* out = total.data() + view.trial_begin();
      for (std::size_t i = 0; i < row.size(); ++i) out[i] += row[i];
    }
  });
  return total;
}

}  // namespace are::metrics
