#include "metrics/allocation.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "metrics/statistics.hpp"

namespace are::metrics {

TvarAllocation allocate_tvar(const core::YearLossTable& ylt, double level) {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("allocation level must be in (0,1)");
  }
  if (ylt.num_trials() == 0 || ylt.num_layers() == 0) {
    throw std::invalid_argument("allocation needs a non-empty YLT");
  }

  const std::vector<double> portfolio = ylt.portfolio_losses();
  std::vector<double> sorted = portfolio;
  std::sort(sorted.begin(), sorted.end());
  const double var = quantile(sorted, level);

  TvarAllocation allocation;
  allocation.portfolio_var = var;
  allocation.layer_contributions.assign(ylt.num_layers(), 0.0);

  // Tail = trials whose portfolio loss is at or above VaR (ties included,
  // matching the tail_value_at_risk convention so the sum telescopes).
  std::size_t tail_count = 0;
  for (std::size_t trial = 0; trial < ylt.num_trials(); ++trial) {
    if (portfolio[trial] >= var) {
      ++tail_count;
      for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
        allocation.layer_contributions[layer] += ylt.at(layer, trial);
      }
    }
  }
  if (tail_count == 0) {
    // Degenerate tail (all trials identical below var); fall back to means.
    for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
      allocation.layer_contributions[layer] =
          summarize(ylt.layer_losses(layer)).mean();
    }
    tail_count = 1;
    allocation.portfolio_tvar = std::accumulate(allocation.layer_contributions.begin(),
                                                allocation.layer_contributions.end(), 0.0);
  } else {
    for (double& contribution : allocation.layer_contributions) {
      contribution /= static_cast<double>(tail_count);
    }
    allocation.portfolio_tvar = std::accumulate(allocation.layer_contributions.begin(),
                                                allocation.layer_contributions.end(), 0.0);
  }

  allocation.layer_shares.resize(ylt.num_layers());
  const double denom = allocation.portfolio_tvar != 0.0 ? allocation.portfolio_tvar : 1.0;
  for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
    allocation.layer_shares[layer] = allocation.layer_contributions[layer] / denom;
  }
  return allocation;
}

double diversification_benefit(const core::YearLossTable& ylt, double level) {
  const TvarAllocation allocation = allocate_tvar(ylt, level);
  double standalone_sum = 0.0;
  for (std::size_t layer = 0; layer < ylt.num_layers(); ++layer) {
    std::vector<double> losses(ylt.layer_losses(layer).begin(),
                               ylt.layer_losses(layer).end());
    std::sort(losses.begin(), losses.end());
    standalone_sum += tail_value_at_risk(losses, level);
  }
  if (standalone_sum == 0.0) return 0.0;
  return 1.0 - allocation.portfolio_tvar / standalone_sum;
}

}  // namespace are::metrics
