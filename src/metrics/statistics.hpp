#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace are::metrics {

/// Streaming mean/variance (Welford). Numerically stable for the long
/// YLT scans used in pricing.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_ || count_ == 1) min_ = x;
    if (x > max_ || count_ == 1) max_ = x;
  }

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical quantile with linear interpolation (type-7, the R/NumPy
/// default): q in [0, 1] of the given sample.
double quantile(std::span<const double> sorted_sample, double q);

/// Convenience: sorts a copy then takes the quantile.
double quantile_unsorted(std::span<const double> sample, double q);

/// Mean of the worst (1-q) tail — the Tail Value at Risk at level q,
/// estimated as the average of all sample points at or above the
/// q-quantile.
double tail_value_at_risk(std::span<const double> sorted_sample, double q);

RunningStats summarize(std::span<const double> sample) noexcept;

}  // namespace are::metrics
