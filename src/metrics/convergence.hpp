#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace are::metrics {

/// Monte Carlo convergence diagnostics for YLT-derived risk measures. The
/// paper's discussion ("In many applications 50K trials may be sufficient")
/// begs the question this module answers: sufficient for *which* measure at
/// *what* precision? Tail measures need far more trials than the mean.

/// Standard error of the sample mean.
double mean_standard_error(std::span<const double> losses);

/// Bootstrap confidence interval for a quantile-based measure.
struct BootstrapInterval {
  double estimate = 0.0;
  double lower = 0.0;   // percentile CI lower bound
  double upper = 0.0;   // percentile CI upper bound
  double half_width_relative = 0.0;  // (upper-lower)/2 / max(|estimate|, eps)
};

/// Percentile-bootstrap CI for the q-quantile (PML at exceedance 1-q) of
/// the trial losses. Deterministic in `seed`.
BootstrapInterval bootstrap_quantile(std::span<const double> losses, double q,
                                     int resamples = 200, std::uint64_t seed = 1);

/// Percentile-bootstrap CI for TVaR at confidence `level`.
BootstrapInterval bootstrap_tvar(std::span<const double> losses, double level,
                                 int resamples = 200, std::uint64_t seed = 1);

/// Running estimate of a measure over growing trial prefixes — the curve an
/// analyst inspects to decide whether 50K trials "is sufficient".
struct ConvergencePoint {
  std::size_t trials = 0;
  double estimate = 0.0;
};

/// Evaluates `q`-quantile estimates at geometrically growing prefixes of
/// the loss vector (in trial order).
std::vector<ConvergencePoint> quantile_convergence(std::span<const double> losses, double q,
                                                   std::size_t first_prefix = 1000);

/// Smallest prefix whose q-quantile estimate stays within `tolerance`
/// (relative) of the full-sample estimate from that point onward; returns
/// losses.size() when never stable.
std::size_t trials_needed(std::span<const double> losses, double q, double tolerance);

}  // namespace are::metrics
