#include "metrics/filters.hpp"

#include <algorithm>
#include <stdexcept>

namespace are::metrics {

namespace {

double apply_step(double loss, const auto& step) {
  using Kind = std::remove_cvref_t<decltype(step)>::Kind;
  switch (step.kind) {
    case Kind::kScale: return loss * step.a;
    case Kind::kCap: return std::min(loss, step.a);
    case Kind::kExcess: return std::max(loss - step.a, 0.0);
    case Kind::kFranchise: return loss >= step.a ? loss : 0.0;
    case Kind::kProfitCommission: return loss - step.b * std::max(step.a - loss, 0.0);
  }
  return loss;
}

}  // namespace

std::vector<double> filter_scale(std::span<const double> losses, double scale) {
  if (!(scale >= 0.0)) throw std::invalid_argument("filter scale must be >= 0");
  std::vector<double> out(losses.begin(), losses.end());
  for (double& loss : out) loss *= scale;
  return out;
}

std::vector<double> filter_cap(std::span<const double> losses, double cap) {
  if (!(cap >= 0.0)) throw std::invalid_argument("filter cap must be >= 0");
  std::vector<double> out(losses.begin(), losses.end());
  for (double& loss : out) loss = std::min(loss, cap);
  return out;
}

std::vector<double> filter_excess(std::span<const double> losses, double deductible) {
  if (!(deductible >= 0.0)) throw std::invalid_argument("filter deductible must be >= 0");
  std::vector<double> out(losses.begin(), losses.end());
  for (double& loss : out) loss = std::max(loss - deductible, 0.0);
  return out;
}

std::vector<double> filter_franchise(std::span<const double> losses, double threshold) {
  if (!(threshold >= 0.0)) throw std::invalid_argument("filter threshold must be >= 0");
  std::vector<double> out(losses.begin(), losses.end());
  for (double& loss : out) loss = loss >= threshold ? loss : 0.0;
  return out;
}

std::vector<double> filter_profit_commission(std::span<const double> losses, double target,
                                             double rate) {
  if (!(rate >= 0.0) || rate > 1.0) throw std::invalid_argument("commission rate in [0,1]");
  if (!(target >= 0.0)) throw std::invalid_argument("commission target must be >= 0");
  std::vector<double> out(losses.begin(), losses.end());
  for (double& loss : out) loss -= rate * std::max(target - loss, 0.0);
  return out;
}

FilterChain& FilterChain::scale(double factor) {
  if (!(factor >= 0.0)) throw std::invalid_argument("filter scale must be >= 0");
  steps_.push_back({Step::Kind::kScale, factor, 0.0});
  return *this;
}

FilterChain& FilterChain::cap(double cap_value) {
  if (!(cap_value >= 0.0)) throw std::invalid_argument("filter cap must be >= 0");
  steps_.push_back({Step::Kind::kCap, cap_value, 0.0});
  return *this;
}

FilterChain& FilterChain::excess(double deductible) {
  if (!(deductible >= 0.0)) throw std::invalid_argument("filter deductible must be >= 0");
  steps_.push_back({Step::Kind::kExcess, deductible, 0.0});
  return *this;
}

FilterChain& FilterChain::franchise(double threshold) {
  if (!(threshold >= 0.0)) throw std::invalid_argument("filter threshold must be >= 0");
  steps_.push_back({Step::Kind::kFranchise, threshold, 0.0});
  return *this;
}

FilterChain& FilterChain::profit_commission(double target, double rate) {
  if (!(rate >= 0.0) || rate > 1.0) throw std::invalid_argument("commission rate in [0,1]");
  if (!(target >= 0.0)) throw std::invalid_argument("commission target must be >= 0");
  steps_.push_back({Step::Kind::kProfitCommission, target, rate});
  return *this;
}

std::vector<double> FilterChain::apply(std::span<const double> losses) const {
  std::vector<double> out(losses.begin(), losses.end());
  for (const Step& step : steps_) {
    for (double& loss : out) loss = apply_step(loss, step);
  }
  return out;
}

void FilterChain::apply_in_place(core::YearLossTable& ylt, std::size_t layer_index) const {
  auto losses = ylt.layer_losses(layer_index);
  for (const Step& step : steps_) {
    for (double& loss : losses) loss = apply_step(loss, step);
  }
}

}  // namespace are::metrics
