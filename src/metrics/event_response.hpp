#pragma once

#include <cstdint>
#include <vector>

#include "core/layer.hpp"
#include "core/year_loss_table.hpp"
#include "yet/year_event_table.hpp"

namespace are::metrics {

/// Post-event response analytics (the authors' companion work, paper
/// reference [2]: "Rapid Post-Event Catastrophe Modelling"): when a real
/// event strikes, the desk needs the portfolio's conditional position
/// within minutes — what does this event cost per layer, and how does the
/// rest-of-year outlook shift given it happened?

/// Immediate ceded loss of a single event against a layer (net of ELT
/// financial terms and the layer's occurrence terms; aggregate terms are
/// path-dependent and reported separately by the conditional view).
double event_loss_for_layer(const core::Layer& layer, yet::EventId event);

/// Per-layer immediate losses for one event across a portfolio.
std::vector<double> event_losses(const core::Portfolio& portfolio, yet::EventId event);

/// One row of the "top events" report.
struct EventContribution {
  yet::EventId event = 0;
  /// Occurrences of the event across the YET.
  std::uint64_t occurrences = 0;
  /// Expected annual ceded loss attributable to this event (its per-
  /// occurrence loss times its empirical annual frequency), before
  /// aggregate terms.
  double expected_annual_loss = 0.0;
  /// Per-occurrence ceded loss.
  double occurrence_loss = 0.0;
};

/// The `top_n` events by expected annual ceded loss for a layer — the
/// drivers an underwriter reviews before renewing. O(total YET events +
/// catalog scan).
std::vector<EventContribution> top_contributing_events(const core::Layer& layer,
                                                       const yet::YearEventTable& yet_table,
                                                       std::size_t catalog_size,
                                                       std::size_t top_n);

/// Conditional year outlook: statistics of the trial losses restricted to
/// trials that contain `event` — "given this event happens, what does the
/// whole year look like?" Returns the matching trial indices so callers can
/// build conditional EP curves from the YLT.
std::vector<std::size_t> trials_containing(const yet::YearEventTable& yet_table,
                                           yet::EventId event);

/// Conditional expected annual loss for a layer given the event occurs
/// (mean of YLT entries over trials_containing). Throws if the event never
/// occurs in the YET.
double conditional_expected_loss(const core::YearLossTable& ylt, std::size_t layer_index,
                                 const yet::YearEventTable& yet_table, yet::EventId event);

}  // namespace are::metrics
