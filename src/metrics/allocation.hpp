#pragma once

#include <vector>

#include "core/year_loss_table.hpp"

namespace are::metrics {

/// Euler / co-TVaR capital allocation: attribute the portfolio's tail risk
/// back to its layers. For the TVaR risk measure the Euler allocation of
/// layer i is the *co-TVaR*
///
///   A_i = E[ L_i | L_portfolio >= VaR_level(L_portfolio) ],
///
/// which is additive: sum_i A_i == TVaR_level(portfolio). This is the
/// standard bridge from the YLT to the enterprise risk view the paper's
/// stage-3 ("Enterprise Risk Management") consumes.
struct TvarAllocation {
  double portfolio_tvar = 0.0;
  double portfolio_var = 0.0;
  /// One co-TVaR per layer, in YLT layer order; sums to portfolio_tvar.
  std::vector<double> layer_contributions;
  /// contributions / portfolio_tvar (signed shares; can exceed 1 for a
  /// layer hedged by another).
  std::vector<double> layer_shares;
};

/// Computes the co-TVaR allocation at confidence `level` in (0,1).
TvarAllocation allocate_tvar(const core::YearLossTable& ylt, double level);

/// Diversification benefit at `level`: 1 - portfolio TVaR / sum of
/// standalone layer TVaRs. Zero when the layers are comonotonic.
double diversification_benefit(const core::YearLossTable& ylt, double level);

}  // namespace are::metrics
