#include "metrics/ep_curve.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/statistics.hpp"

namespace are::metrics {

EpCurve::EpCurve(std::span<const double> trial_losses)
    : sorted_losses_(trial_losses.begin(), trial_losses.end()) {
  if (sorted_losses_.empty()) throw std::invalid_argument("EP curve needs at least one trial");
  std::sort(sorted_losses_.begin(), sorted_losses_.end());
  double sum = 0.0;
  for (double loss : sorted_losses_) sum += loss;
  mean_ = sum / static_cast<double>(sorted_losses_.size());
}

EpCurve EpCurve::from_sorted(std::vector<double> sorted_losses) {
  if (sorted_losses.empty()) throw std::invalid_argument("EP curve needs at least one trial");
  if (!std::is_sorted(sorted_losses.begin(), sorted_losses.end())) {
    throw std::invalid_argument("EpCurve::from_sorted: losses are not ascending");
  }
  EpCurve curve;
  curve.sorted_losses_ = std::move(sorted_losses);
  // Summed in ascending order, exactly as the sorting constructor does, so
  // the shard-wise path reproduces its mean bit-for-bit.
  double sum = 0.0;
  for (double loss : curve.sorted_losses_) sum += loss;
  curve.mean_ = sum / static_cast<double>(curve.sorted_losses_.size());
  return curve;
}

double EpCurve::loss_at_probability(double p) const {
  if (!(p > 0.0) || !(p <= 1.0)) {
    throw std::invalid_argument("exceedance probability must be in (0,1]");
  }
  return quantile(sorted_losses_, 1.0 - p);
}

double EpCurve::probable_maximum_loss(double years) const {
  if (!(years >= 1.0)) throw std::invalid_argument("return period must be >= 1 year");
  return loss_at_probability(1.0 / years);
}

double EpCurve::tail_value_at_risk(double level) const {
  if (!(level > 0.0) || !(level < 1.0)) {
    throw std::invalid_argument("TVaR confidence level must be in (0,1)");
  }
  return metrics::tail_value_at_risk(sorted_losses_, level);
}

double EpCurve::exceedance_probability(double loss) const {
  // Count of strictly-exceeding trials / total.
  const auto it = std::upper_bound(sorted_losses_.begin(), sorted_losses_.end(), loss);
  const auto exceeding = static_cast<double>(sorted_losses_.end() - it);
  return exceeding / static_cast<double>(sorted_losses_.size());
}

std::vector<EpPoint> EpCurve::table(std::span<const double> return_periods) const {
  std::vector<EpPoint> points;
  points.reserve(return_periods.size());
  for (double years : return_periods) {
    EpPoint point;
    point.return_period = years;
    point.probability = 1.0 / years;
    point.loss = probable_maximum_loss(years);
    points.push_back(point);
  }
  return points;
}

std::vector<double> standard_return_periods() {
  return {2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0};
}

}  // namespace are::metrics
