#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/year_loss_table.hpp"
#include "yet/year_event_table.hpp"

namespace are::metrics {

/// One point of an exceedance-probability curve.
struct EpPoint {
  /// Probability that the annual loss exceeds `loss`.
  double probability = 0.0;
  /// Return period in years (1 / probability).
  double return_period = 0.0;
  double loss = 0.0;
};

/// An exceedance-probability curve derived from trial losses. For an AEP
/// (aggregate EP) curve feed YLT trial losses; for an OEP (occurrence EP)
/// curve feed per-trial *maximum* occurrence losses.
class EpCurve {
 public:
  EpCurve() = default;

  /// Builds from unsorted trial losses.
  explicit EpCurve(std::span<const double> trial_losses);

  /// Adopts an already-ascending loss vector without copying or re-sorting
  /// — the hand-off from the shard-wise k-way merge (metrics/
  /// sharded_reduce.hpp). Precondition (checked): `sorted_losses` is
  /// non-empty and ascending.
  static EpCurve from_sorted(std::vector<double> sorted_losses);

  /// Loss exceeded with probability p (the "PML at probability p"):
  /// the (1-p) empirical quantile of the annual loss.
  double loss_at_probability(double p) const;

  /// Loss exceeded once every `years` years on average — the Probable
  /// Maximum Loss at that return period (e.g. years=250 gives the 250-year
  /// PML used in regulatory reporting).
  double probable_maximum_loss(double years) const;

  /// Tail Value at Risk at confidence `level` in (0,1): the expected annual
  /// loss given the loss is at or beyond the `level` quantile (e.g. 0.99 =
  /// the mean of the worst 1% of years).
  double tail_value_at_risk(double level) const;

  /// Empirical probability that the annual loss exceeds `loss`.
  double exceedance_probability(double loss) const;

  double expected_loss() const noexcept { return mean_; }
  std::size_t num_trials() const noexcept { return sorted_losses_.size(); }
  std::span<const double> sorted_losses() const noexcept { return sorted_losses_; }

  /// Curve samples at the given return periods (for reports/CSV output).
  std::vector<EpPoint> table(std::span<const double> return_periods) const;

 private:
  std::vector<double> sorted_losses_;  // ascending
  double mean_ = 0.0;
};

/// Standard regulatory return periods.
std::vector<double> standard_return_periods();

}  // namespace are::metrics
