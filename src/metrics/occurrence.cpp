#include "metrics/occurrence.hpp"

#include <algorithm>

namespace are::metrics {

namespace {

double combined_event_loss(const core::Layer& layer, yet::EventId event) noexcept {
  double combined = 0.0;
  for (const core::LayerElt& layer_elt : layer.elts) {
    combined += layer_elt.terms.apply(layer_elt.lookup->lookup(event));
  }
  return layer.terms.apply_occurrence(combined);
}

}  // namespace

std::vector<double> max_occurrence_losses(const core::Layer& layer,
                                          const yet::YearEventTable& yet_table) {
  layer.validate();
  std::vector<double> maxima(yet_table.num_trials(), 0.0);
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    double max_loss = 0.0;
    for (const yet::EventId event : yet_table.trial_events(trial)) {
      max_loss = std::max(max_loss, combined_event_loss(layer, event));
    }
    maxima[trial] = max_loss;
  }
  return maxima;
}

std::vector<std::uint32_t> occurrence_counts_above(const core::Layer& layer,
                                                   const yet::YearEventTable& yet_table,
                                                   double threshold) {
  layer.validate();
  std::vector<std::uint32_t> counts(yet_table.num_trials(), 0);
  for (std::size_t trial = 0; trial < yet_table.num_trials(); ++trial) {
    std::uint32_t count = 0;
    for (const yet::EventId event : yet_table.trial_events(trial)) {
      if (combined_event_loss(layer, event) > threshold) ++count;
    }
    counts[trial] = count;
  }
  return counts;
}

}  // namespace are::metrics
