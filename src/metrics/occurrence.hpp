#pragma once

#include <vector>

#include "core/layer.hpp"
#include "yet/year_event_table.hpp"

namespace are::metrics {

/// Per-trial maximum single-occurrence loss for a layer (net of ELT
/// financial terms and the layer's occurrence terms) — the input to an OEP
/// curve. The AEP/OEP distinction matters because Cat XL contracts respond
/// per occurrence while stop-loss contracts respond to the aggregate.
std::vector<double> max_occurrence_losses(const core::Layer& layer,
                                          const yet::YearEventTable& yet_table);

/// Per-trial occurrence counts above a loss threshold (frequency view used
/// in event-response reporting).
std::vector<std::uint32_t> occurrence_counts_above(const core::Layer& layer,
                                                   const yet::YearEventTable& yet_table,
                                                   double threshold);

}  // namespace are::metrics
