#pragma once

#include <cstdint>
#include <vector>

#include "financial/terms.hpp"

namespace are::financial {

/// Reinstatement provisions (paper's future-work reference [18], Anderson &
/// Dong): a Cat XL layer whose aggregate capacity is the occurrence limit
/// times (1 + number of reinstatements), where each reinstatement is
/// "bought back" pro-rata at a percentage of the original premium as losses
/// consume the limit.
struct ReinstatementProvision {
  /// Number of reinstatements; aggregate capacity = (count + 1) * occ limit.
  std::uint32_t count = 0;
  /// Premium rate per reinstatement as a fraction of the original premium
  /// (e.g. 1.0 = 100% "paid reinstatement"). One rate per reinstatement;
  /// if fewer rates than `count` are given the last rate repeats.
  std::vector<double> premium_rates;

  /// Effective aggregate limit implied by the provision.
  double aggregate_limit(double occurrence_limit) const noexcept {
    if (occurrence_limit == kUnlimited) return kUnlimited;
    return occurrence_limit * static_cast<double>(count + 1);
  }

  /// Reinstatement premium owed for a trial that ceded `trial_loss` against
  /// `occurrence_limit`, as a fraction of the original premium.
  ///
  /// Losses consume the limit layer by layer; reinstatement i is charged
  /// pro-rata on the fraction of the i-th limit-tranche consumed.
  double premium_fraction(double trial_loss, double occurrence_limit) const noexcept {
    if (count == 0 || occurrence_limit <= 0.0 || occurrence_limit == kUnlimited) return 0.0;
    double fraction = 0.0;
    for (std::uint32_t i = 0; i < count; ++i) {
      const double tranche_start = occurrence_limit * static_cast<double>(i);
      const double consumed = excess_of_loss(trial_loss, tranche_start, occurrence_limit);
      fraction += rate_for(i) * (consumed / occurrence_limit);
    }
    return fraction;
  }

  double rate_for(std::uint32_t i) const noexcept {
    if (premium_rates.empty()) return 1.0;
    return premium_rates[i < premium_rates.size() ? i : premium_rates.size() - 1];
  }
};

/// Multi-year aggregate limit (paper's reference [23], Berens): a contract
/// whose aggregate limit spans `years` consecutive contractual years.
/// Carries the consumed-limit state across year boundaries.
class MultiYearAggregate {
 public:
  MultiYearAggregate(double aggregate_limit, std::uint32_t years)
      : limit_(aggregate_limit), years_(years) {
    if (years == 0) throw std::invalid_argument("multi-year term needs >= 1 year");
    if (!(aggregate_limit >= 0.0)) throw std::invalid_argument("negative multi-year limit");
  }

  /// Feeds one year's pre-limit aggregate loss; returns the ceded amount
  /// after the shared multi-year limit. Resets automatically at term end.
  double add_year(double year_loss) noexcept {
    const double remaining = limit_ == kUnlimited ? year_loss : limit_ - consumed_;
    const double ceded = year_loss < remaining ? year_loss : (remaining > 0.0 ? remaining : 0.0);
    consumed_ += ceded;
    if (++year_in_term_ == years_) {
      consumed_ = 0.0;
      year_in_term_ = 0;
    }
    return ceded;
  }

  double consumed() const noexcept { return consumed_; }
  std::uint32_t year_in_term() const noexcept { return year_in_term_; }

 private:
  double limit_;
  std::uint32_t years_;
  double consumed_ = 0.0;
  std::uint32_t year_in_term_ = 0;
};

/// Franchise deductible: unlike an ordinary (excess) deductible, once the
/// loss exceeds the franchise the *full* loss is covered.
constexpr double apply_franchise(double loss, double franchise) noexcept {
  return loss >= franchise ? loss : 0.0;
}

}  // namespace are::financial
