#include "financial/discretize.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace are::financial {

double lognormal_cdf(double x, double mu, double sigma) {
  if (x <= 0.0) return 0.0;
  return 0.5 * std::erfc(-(std::log(x) - mu) / (sigma * std::sqrt(2.0)));
}

LossDistribution discretize_lognormal(double mean, double coefficient_of_variation,
                                      double bin_width, std::size_t grid_size) {
  if (!(mean >= 0.0)) throw std::invalid_argument("mean must be >= 0");
  if (!(coefficient_of_variation >= 0.0)) throw std::invalid_argument("cv must be >= 0");
  if (!(bin_width > 0.0) || grid_size == 0) throw std::invalid_argument("bad grid");

  if (mean == 0.0 || coefficient_of_variation == 0.0) {
    return LossDistribution::point_mass(mean, bin_width, grid_size);
  }

  // mean = exp(mu + sigma^2/2), cv^2 = exp(sigma^2) - 1.
  const double sigma2 = std::log(1.0 + coefficient_of_variation * coefficient_of_variation);
  const double sigma = std::sqrt(sigma2);
  const double mu = std::log(mean) - 0.5 * sigma2;

  std::vector<double> mass(grid_size, 0.0);
  double cdf_lo = 0.0;
  for (std::size_t k = 0; k + 1 < grid_size; ++k) {
    // Bin k owns [k*w - w/2, k*w + w/2): mass at the *grid point* k*w.
    const double hi = (static_cast<double>(k) + 0.5) * bin_width;
    const double cdf_hi = lognormal_cdf(hi, mu, sigma);
    mass[k] = cdf_hi - cdf_lo;
    cdf_lo = cdf_hi;
  }
  mass[grid_size - 1] = 1.0 - cdf_lo;  // tail folds into the top bin
  return LossDistribution(std::move(mass), bin_width);
}

}  // namespace are::financial
