#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace are::financial {

/// A discrete loss distribution on a fixed uniform grid of loss amounts —
/// the representation needed for the paper's suggested extension of
/// "losses as a distribution (rather than a simple mean)", where financial
/// term application "would likely benefit from use of a numerical library
/// for convolution" (paper §IV).
///
/// Probabilities live on grid points k * bin_width for k in [0, size).
class LossDistribution {
 public:
  LossDistribution() = default;

  /// `probabilities[k]` is the mass at loss k * bin_width. Mass is
  /// normalised on construction.
  LossDistribution(std::vector<double> probabilities, double bin_width);

  /// Point mass at `loss` (rounded to the nearest grid point).
  static LossDistribution point_mass(double loss, double bin_width, std::size_t grid_size);

  std::size_t size() const noexcept { return mass_.size(); }
  double bin_width() const noexcept { return bin_width_; }
  std::span<const double> mass() const noexcept { return mass_; }

  double mean() const noexcept;
  double variance() const noexcept;

  /// P(loss > x).
  double exceedance(double x) const noexcept;

  /// Smallest grid loss q with P(loss <= q) >= p.
  double quantile(double p) const noexcept;

  /// Distribution of the sum of two independent losses (direct O(n^2)
  /// convolution, truncated to the grid; tail mass accumulates in the last
  /// bin so total mass — and hence exceedance probabilities below the grid
  /// top — is preserved).
  LossDistribution convolve(const LossDistribution& other, std::size_t max_size) const;

  /// Applies an excess-of-loss transform x -> min(max(x - retention, 0),
  /// limit) to the random variable (mass re-binned onto the same grid).
  LossDistribution apply_excess_of_loss(double retention, double limit) const;

  /// Mixture: this with probability (1-w), other with probability w.
  LossDistribution mix(const LossDistribution& other, double w) const;

 private:
  std::vector<double> mass_;
  double bin_width_ = 1.0;
};

}  // namespace are::financial
