#pragma once

#include <cstddef>

#include "financial/loss_distribution.hpp"

namespace are::financial {

/// Discretizes a lognormal severity with the given mean and coefficient of
/// variation onto a uniform grid (mass[k] = P(loss in bin k), computed from
/// CDF differences; tail mass folds into the last bin). The building block
/// for the paper's "losses as a distribution (rather than a simple mean)"
/// extension: an ELT's mean loss plus an uncertainty assumption becomes a
/// per-event severity distribution.
LossDistribution discretize_lognormal(double mean, double coefficient_of_variation,
                                      double bin_width, std::size_t grid_size);

/// Lognormal CDF with parameters of the underlying normal (exposed for
/// tests).
double lognormal_cdf(double x, double mu, double sigma);

}  // namespace are::financial
