#include "financial/loss_distribution.hpp"

#include "financial/terms.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace are::financial {

LossDistribution::LossDistribution(std::vector<double> probabilities, double bin_width)
    : mass_(std::move(probabilities)), bin_width_(bin_width) {
  if (mass_.empty()) throw std::invalid_argument("loss distribution needs at least one bin");
  if (!(bin_width > 0.0)) throw std::invalid_argument("bin width must be > 0");
  double total = 0.0;
  for (double p : mass_) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      throw std::invalid_argument("probabilities must be finite and non-negative");
    }
    total += p;
  }
  if (!(total > 0.0)) throw std::invalid_argument("distribution must have positive mass");
  for (double& p : mass_) p /= total;
}

LossDistribution LossDistribution::point_mass(double loss, double bin_width,
                                              std::size_t grid_size) {
  if (grid_size == 0) throw std::invalid_argument("grid size must be > 0");
  std::vector<double> mass(grid_size, 0.0);
  auto bin = static_cast<std::size_t>(std::llround(loss / bin_width));
  bin = std::min(bin, grid_size - 1);
  mass[bin] = 1.0;
  return LossDistribution(std::move(mass), bin_width);
}

double LossDistribution::mean() const noexcept {
  double m = 0.0;
  for (std::size_t k = 0; k < mass_.size(); ++k) {
    m += static_cast<double>(k) * bin_width_ * mass_[k];
  }
  return m;
}

double LossDistribution::variance() const noexcept {
  const double m = mean();
  double v = 0.0;
  for (std::size_t k = 0; k < mass_.size(); ++k) {
    const double x = static_cast<double>(k) * bin_width_;
    v += (x - m) * (x - m) * mass_[k];
  }
  return v;
}

double LossDistribution::exceedance(double x) const noexcept {
  double p = 0.0;
  for (std::size_t k = 0; k < mass_.size(); ++k) {
    if (static_cast<double>(k) * bin_width_ > x) p += mass_[k];
  }
  return p;
}

double LossDistribution::quantile(double p) const noexcept {
  double cumulative = 0.0;
  for (std::size_t k = 0; k < mass_.size(); ++k) {
    cumulative += mass_[k];
    if (cumulative >= p) return static_cast<double>(k) * bin_width_;
  }
  return static_cast<double>(mass_.size() - 1) * bin_width_;
}

LossDistribution LossDistribution::convolve(const LossDistribution& other,
                                            std::size_t max_size) const {
  if (std::abs(bin_width_ - other.bin_width_) > 1e-12 * bin_width_) {
    throw std::invalid_argument("convolution requires identical grids");
  }
  const std::size_t full = mass_.size() + other.mass_.size() - 1;
  const std::size_t out_size = std::min(full, max_size == 0 ? full : max_size);
  std::vector<double> out(out_size, 0.0);
  for (std::size_t i = 0; i < mass_.size(); ++i) {
    if (mass_[i] == 0.0) continue;
    for (std::size_t j = 0; j < other.mass_.size(); ++j) {
      const std::size_t k = std::min(i + j, out_size - 1);  // tail mass folds into last bin
      out[k] += mass_[i] * other.mass_[j];
    }
  }
  return LossDistribution(std::move(out), bin_width_);
}

LossDistribution LossDistribution::apply_excess_of_loss(double retention, double limit) const {
  std::vector<double> out(mass_.size(), 0.0);
  for (std::size_t k = 0; k < mass_.size(); ++k) {
    if (mass_[k] == 0.0) continue;
    const double x = static_cast<double>(k) * bin_width_;
    const double y = excess_of_loss(x, retention, limit);
    auto bin = static_cast<std::size_t>(std::llround(y / bin_width_));
    bin = std::min(bin, out.size() - 1);
    out[bin] += mass_[k];
  }
  return LossDistribution(std::move(out), bin_width_);
}

LossDistribution LossDistribution::mix(const LossDistribution& other, double w) const {
  if (!(w >= 0.0) || !(w <= 1.0)) throw std::invalid_argument("mixture weight must be in [0,1]");
  if (std::abs(bin_width_ - other.bin_width_) > 1e-12 * bin_width_) {
    throw std::invalid_argument("mixture requires identical grids");
  }
  std::vector<double> out(std::max(mass_.size(), other.mass_.size()), 0.0);
  for (std::size_t k = 0; k < mass_.size(); ++k) out[k] += (1.0 - w) * mass_[k];
  for (std::size_t k = 0; k < other.mass_.size(); ++k) out[k] += w * other.mass_[k];
  return LossDistribution(std::move(out), bin_width_);
}

}  // namespace are::financial
