#pragma once

#include "financial/terms.hpp"

namespace are::financial {

/// Streaming application of the layer's aggregate terms across the ordered
/// event occurrences of one trial (paper lines 12-19).
///
/// Aggregate terms are path-dependent: the ceded amount of event k is the
/// *increment* of the capped cumulative loss, so it depends on the sequence
/// of prior events in the trial. This accumulator makes that recurrence an
/// O(1)-state object so the chunked engines can carry it across chunks.
class TrialAccumulator {
 public:
  constexpr explicit TrialAccumulator(const LayerTerms& terms) noexcept : terms_(terms) {}

  /// Feeds the next occurrence loss (already net of occurrence terms) and
  /// returns the amount ceded under the aggregate terms for this event.
  constexpr double add_occurrence(double occurrence_loss) noexcept {
    cumulative_ += occurrence_loss;
    const double capped = terms_.apply_aggregate(cumulative_);
    const double increment = capped - previous_capped_;
    previous_capped_ = capped;
    trial_loss_ += increment;
    return increment;
  }

  /// Total ceded loss for the trial so far (the YLT entry, paper line 19).
  constexpr double trial_loss() const noexcept { return trial_loss_; }

  /// Raw cumulative occurrence loss before aggregate terms.
  constexpr double cumulative_occurrence_loss() const noexcept { return cumulative_; }

  constexpr void reset() noexcept {
    cumulative_ = 0.0;
    previous_capped_ = 0.0;
    trial_loss_ = 0.0;
  }

 private:
  LayerTerms terms_;
  double cumulative_ = 0.0;
  double previous_capped_ = 0.0;
  double trial_loss_ = 0.0;
};

}  // namespace are::financial
