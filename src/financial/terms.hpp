#pragma once

#include <limits>
#include <stdexcept>

namespace are::financial {

inline constexpr double kUnlimited = std::numeric_limits<double>::infinity();

/// Generic excess-of-loss transform: the amount of `loss` that falls in the
/// band [retention, retention + limit], i.e. min(max(loss - retention, 0),
/// limit). This single function is the financial primitive behind both the
/// occurrence terms (lines 10-11 of the paper's algorithm) and the
/// aggregate terms (lines 14-15).
///
/// Contract with the SIMD engine (src/simd/vec.hpp): the branchy selects
/// below are exactly `min(max(loss - retention, 0.0), limit)` under the
/// x86 MINPD/MAXPD convention (second operand returned on equality) for
/// the engine's domain — finite non-negative losses, retentions >= 0,
/// limits >= 0 or +inf, never NaN. Any change to this arithmetic must
/// keep the vectorized form in core/simd_engine.cpp bit-identical (the
/// equivalence suite in tests/test_simd_engine.cpp enforces it).
constexpr double excess_of_loss(double loss, double retention, double limit) noexcept {
  const double in_excess = loss - retention;
  if (in_excess <= 0.0) return 0.0;
  return in_excess < limit ? in_excess : limit;
}

/// Per-ELT financial terms `I` (paper §II-A): each Event Loss Table carries
/// its own metadata including currency conversion and terms applied at the
/// level of each individual event loss (lines 6-7 of the algorithm).
struct FinancialTerms {
  /// Per-event retention (deductible) before the loss reaches the layer.
  double occurrence_retention = 0.0;
  /// Per-event limit on the ceded loss.
  double occurrence_limit = kUnlimited;
  /// Proportional share ceded to the reinsurer, in (0, 1].
  double share = 1.0;
  /// Currency conversion applied to the ELT's native-currency losses.
  double currency_rate = 1.0;

  constexpr double apply(double loss) const noexcept {
    return excess_of_loss(loss * currency_rate, occurrence_retention, occurrence_limit) * share;
  }

  void validate() const {
    if (occurrence_retention < 0.0) throw std::invalid_argument("negative ELT retention");
    if (!(occurrence_limit >= 0.0)) throw std::invalid_argument("negative ELT limit");
    if (!(share > 0.0) || share > 1.0) throw std::invalid_argument("ELT share must be in (0,1]");
    if (!(currency_rate > 0.0)) throw std::invalid_argument("currency rate must be > 0");
  }

  friend bool operator==(const FinancialTerms&, const FinancialTerms&) = default;
};

/// Layer terms `T = (TOccR, TOccL, TAggR, TAggL)` — Table I of the paper.
struct LayerTerms {
  /// Occurrence Retention: deductible of the insured for an individual
  /// occurrence loss.
  double occurrence_retention = 0.0;
  /// Occurrence Limit: coverage the insurer pays for occurrence losses in
  /// excess of the retention.
  double occurrence_limit = kUnlimited;
  /// Aggregate Retention: deductible for the annual cumulative loss.
  double aggregate_retention = 0.0;
  /// Aggregate Limit: coverage for annual cumulative losses in excess of
  /// the aggregate retention.
  double aggregate_limit = kUnlimited;

  /// Occurrence terms applied to one combined event loss (paper line 11).
  constexpr double apply_occurrence(double loss) const noexcept {
    return excess_of_loss(loss, occurrence_retention, occurrence_limit);
  }

  /// Aggregate terms applied to a running cumulative loss (paper line 15).
  constexpr double apply_aggregate(double cumulative) const noexcept {
    return excess_of_loss(cumulative, aggregate_retention, aggregate_limit);
  }

  void validate() const {
    if (occurrence_retention < 0.0 || aggregate_retention < 0.0) {
      throw std::invalid_argument("negative layer retention");
    }
    if (!(occurrence_limit >= 0.0) || !(aggregate_limit >= 0.0)) {
      throw std::invalid_argument("negative layer limit");
    }
  }

  /// A pure Per-Occurrence (Cat XL) contract: no aggregate features.
  static constexpr LayerTerms cat_xl(double retention, double limit) noexcept {
    return {retention, limit, 0.0, kUnlimited};
  }

  /// A pure Aggregate XL (stop-loss) contract: no per-occurrence features.
  static constexpr LayerTerms aggregate_xl(double retention, double limit) noexcept {
    return {0.0, kUnlimited, retention, limit};
  }

  friend bool operator==(const LayerTerms&, const LayerTerms&) = default;
};

}  // namespace are::financial
