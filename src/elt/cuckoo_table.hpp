#pragma once

#include <cstdint>
#include <vector>

#include "elt/lookup.hpp"

namespace are::elt {

/// Two-choice cuckoo hash table (Pagh & Rodler 2004 — the paper's reference
/// [30]). Worst-case *two* memory accesses per lookup and ~50% space
/// overhead, the "constant-time space-efficient hashing scheme" the paper
/// considers and rejects for its "considerable implementation and run-time
/// performance complexity".
class CuckooTable final : public ILossLookup {
 public:
  CuckooTable(const EventLossTable& table, std::size_t catalog_size);

  double lookup(EventId event) const noexcept override {
    if (buckets_[0].empty()) return 0.0;
    const Slot& first = buckets_[0][hash0(event) & mask_];
    if (first.occupied && first.event == event) return first.loss;
    const Slot& second = buckets_[1][hash1(event) & mask_];
    if (second.occupied && second.event == event) return second.loss;
    return 0.0;
  }

  /// Batch path: both candidate slots are pure functions of the id, so a
  /// lookahead window prefetches the two probes before the compare.
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override;

  std::size_t memory_bytes() const noexcept override {
    return (buckets_[0].size() + buckets_[1].size()) * sizeof(Slot);
  }

  LookupKind kind() const noexcept override { return LookupKind::kCuckoo; }
  std::size_t entry_count() const noexcept override { return entries_; }

  /// Number of whole-table rebuilds triggered during construction (a
  /// diagnostic for the paper's "implementation complexity" claim).
  int rebuild_count() const noexcept { return rebuilds_; }

  /// Slot layout and raw accessors are public for the gathered probe
  /// kernels (src/elt/probe_dispatch.hpp), which read slots as three
  /// 64-bit gathers — the 24-byte qword-aligned layout is load-bearing.
  struct Slot {
    EventId event = 0;
    double loss = 0.0;
    bool occupied = false;
  };
  static_assert(sizeof(Slot) == 24, "probe kernels gather slots as 3 qwords");

  std::uint64_t hash0(EventId event) const noexcept {
    std::uint64_t x = event + seed0_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::uint64_t hash1(EventId event) const noexcept {
    std::uint64_t x = event + seed1_;
    x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdULL;
    x = (x ^ (x >> 33)) * 0xc4ceb9fe1a85ec53ULL;
    return x ^ (x >> 33);
  }

  const Slot* bucket_data(int side) const noexcept { return buckets_[side].data(); }
  std::size_t slot_mask() const noexcept { return mask_; }

 private:
  /// Inserts with displacement; returns false when a cycle is detected and
  /// a rehash with fresh seeds is required.
  bool try_insert(EventId event, double loss);
  void build(const EventLossTable& table);

  std::vector<Slot> buckets_[2];
  std::size_t mask_ = 0;
  std::size_t entries_ = 0;
  std::uint64_t seed0_ = 0x1234567890abcdefULL;
  std::uint64_t seed1_ = 0xfedcba0987654321ULL;
  int rebuilds_ = 0;
};

}  // namespace are::elt
