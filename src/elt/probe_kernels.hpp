#pragma once

// Gathered hash-probe kernel bodies, included ONLY by the per-ISA
// translation units (src/core/kernel_ext_{avx2,avx512}.cpp). The includer
// defines ARE_PROBE_BODY_AVX2 or ARE_PROBE_BODY_AVX512 to request the
// matching body; everything here is in an anonymous namespace for the same
// reason trial_kernel_body.hpp is (each ISA TU keeps private copies — no
// cross-TU comdat can leak wide instructions into narrow paths). The
// external entry points wrapping these bodies are declared in
// probe_dispatch.hpp and defined by the including TU.
//
// Algorithm (SIMDOperators-style lockstep probing): W keys are hashed
// scalar (64-bit multiplies have no AVX2 lane form), their 24-byte slots
// read as three 64-bit gathers — qword 0 is event|distance (robin hood) or
// event|padding (cuckoo), qword 1 the loss, qword 2 the occupied byte —
// and a per-lane active mask retires lanes as their probe chain ends.
// While one group resolves, the next group's home slots are hashed and
// prefetched (the vector analogue of the scalar paths' lookahead rings).
// Every lane performs exactly the reads the scalar probe loop performs, in
// the same order, so results AND probe counts are identical to tables.cpp.

#include <cstddef>
#include <cstdint>

#include "elt/cuckoo_table.hpp"
#include "elt/robin_hood_table.hpp"
#include "simd/prefetch.hpp"

#if defined(ARE_PROBE_BODY_AVX2) || defined(ARE_PROBE_BODY_AVX512)
#include <immintrin.h>
#endif

namespace are::elt::probe {
namespace {

/// Scalar probe chains for the vector kernels' tails (count % lanes keys)
/// — the same chain as RobinHoodTable::lookup / tables.cpp, counting one
/// read per slot touched.
[[maybe_unused]] std::uint64_t robin_hood_probe_tail(const RobinHoodTable& table,
                                                     const EventId* events, std::size_t count,
                                                     double* out) noexcept {
  const RobinHoodTable::Slot* slots = table.slot_data();
  const std::size_t mask = table.slot_mask();
  std::uint64_t reads = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const EventId event = events[i];
    std::size_t index = RobinHoodTable::hash(event) & mask;
    double result = 0.0;
    std::uint32_t distance = 0;
    for (;;) {
      ++reads;
      const RobinHoodTable::Slot& slot = slots[index];
      if (!slot.occupied) break;
      if (slot.event == event) {
        result = slot.loss;
        break;
      }
      if (distance > slot.distance) break;
      index = (index + 1) & mask;
      ++distance;
    }
    out[i] = result;
  }
  return reads;
}

[[maybe_unused]] std::uint64_t cuckoo_probe_tail(const CuckooTable& table, const EventId* events,
                                                 std::size_t count, double* out) noexcept {
  const CuckooTable::Slot* b0 = table.bucket_data(0);
  const CuckooTable::Slot* b1 = table.bucket_data(1);
  const std::size_t mask = table.slot_mask();
  std::uint64_t reads = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const EventId event = events[i];
    const CuckooTable::Slot& first = b0[table.hash0(event) & mask];
    ++reads;
    if (first.occupied && first.event == event) {
      out[i] = first.loss;
      continue;
    }
    const CuckooTable::Slot& second = b1[table.hash1(event) & mask];
    ++reads;
    out[i] = (second.occupied && second.event == event) ? second.loss : 0.0;
  }
  return reads;
}

#if defined(ARE_PROBE_BODY_AVX2)

std::uint64_t robin_hood_probe_avx2_body(const RobinHoodTable& table, const EventId* events,
                                         std::size_t count, double* out) noexcept {
  constexpr std::size_t kW = 4;
  const RobinHoodTable::Slot* slots = table.slot_data();
  const auto* qwords = reinterpret_cast<const long long*>(slots);
  const std::uint64_t mask = table.slot_mask();
  const std::size_t groups = count / kW;
  std::uint64_t reads = 0;

  // Double-buffered home slots: group g+1 is hashed and prefetched while
  // group g's gathers resolve.
  alignas(32) std::uint64_t home[2][kW];
  for (std::size_t l = 0; l < kW && groups != 0; ++l) {
    home[0][l] = RobinHoodTable::hash(events[l]) & mask;
    simd::prefetch_read(slots + home[0][l]);
  }

  const __m256i vall = _mm256_set1_epi64x(-1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vlow32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i vbyte = _mm256_set1_epi64x(0xffLL);
  const __m256i vmaskv = _mm256_set1_epi64x(static_cast<long long>(mask));

  for (std::size_t g = 0; g < groups; ++g) {
    if (g + 1 < groups) {
      std::uint64_t* next = home[(g + 1) & 1];
      const EventId* ahead = events + (g + 1) * kW;
      for (std::size_t l = 0; l < kW; ++l) {
        next[l] = RobinHoodTable::hash(ahead[l]) & mask;
        simd::prefetch_read(slots + next[l]);
      }
    }
    const __m256i vkey = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(events + g * kW)));
    __m256i vidx = _mm256_load_si256(reinterpret_cast<const __m256i*>(home[g & 1]));
    __m256i vdist = vzero;
    __m256i vactive = vall;
    __m256d vresult = _mm256_setzero_pd();
    for (;;) {
      const int lanes = _mm256_movemask_pd(_mm256_castsi256_pd(vactive));
      if (lanes == 0) break;
      reads += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(lanes)));
      const __m256i vq = _mm256_add_epi64(_mm256_add_epi64(vidx, vidx), vidx);  // slot * 3
      const __m256i q0 = _mm256_mask_i64gather_epi64(vzero, qwords, vq, vactive, 8);
      const __m256i q2 = _mm256_mask_i64gather_epi64(vzero, qwords + 2, vq, vactive, 8);
      const __m256i vocc =
          _mm256_andnot_si256(_mm256_cmpeq_epi64(_mm256_and_si256(q2, vbyte), vzero), vall);
      const __m256i vmatch = _mm256_cmpeq_epi64(_mm256_and_si256(q0, vlow32), vkey);
      const __m256i vfound = _mm256_and_si256(_mm256_and_si256(vocc, vmatch), vactive);
      vresult = _mm256_mask_i64gather_pd(vresult, reinterpret_cast<const double*>(qwords + 1),
                                         vq, _mm256_castsi256_pd(vfound), 8);
      // Continue only while: occupied, not this key, and the Robin Hood
      // invariant still allows the key further along (distance <=
      // slot.distance). Everything else retires with result 0 (or the
      // gathered loss for found lanes).
      const __m256i vrich = _mm256_cmpgt_epi64(vdist, _mm256_srli_epi64(q0, 32));
      const __m256i vcontinue = _mm256_andnot_si256(
          vmatch, _mm256_andnot_si256(vrich, vocc));
      vactive = _mm256_and_si256(vactive, vcontinue);
      vidx = _mm256_and_si256(_mm256_add_epi64(vidx, vone), vmaskv);
      vdist = _mm256_add_epi64(vdist, vone);
    }
    _mm256_storeu_pd(out + g * kW, vresult);
  }

  reads += robin_hood_probe_tail(table, events + groups * kW, count - groups * kW,
                                 out + groups * kW);
  return reads;
}

std::uint64_t cuckoo_probe_avx2_body(const CuckooTable& table, const EventId* events,
                                     std::size_t count, double* out) noexcept {
  constexpr std::size_t kW = 4;
  const CuckooTable::Slot* b0 = table.bucket_data(0);
  const CuckooTable::Slot* b1 = table.bucket_data(1);
  const auto* qwords0 = reinterpret_cast<const long long*>(b0);
  const auto* qwords1 = reinterpret_cast<const long long*>(b1);
  const std::uint64_t mask = table.slot_mask();
  const std::size_t groups = count / kW;
  std::uint64_t reads = 0;

  alignas(32) std::uint64_t home0[2][kW];
  alignas(32) std::uint64_t home1[2][kW];
  for (std::size_t l = 0; l < kW && groups != 0; ++l) {
    home0[0][l] = table.hash0(events[l]) & mask;
    home1[0][l] = table.hash1(events[l]) & mask;
    simd::prefetch_read(b0 + home0[0][l]);
    simd::prefetch_read(b1 + home1[0][l]);
  }

  const __m256i vall = _mm256_set1_epi64x(-1);
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vlow32 = _mm256_set1_epi64x(0xffffffffLL);
  const __m256i vbyte = _mm256_set1_epi64x(0xffLL);

  for (std::size_t g = 0; g < groups; ++g) {
    if (g + 1 < groups) {
      const std::size_t next = (g + 1) & 1;
      const EventId* ahead = events + (g + 1) * kW;
      for (std::size_t l = 0; l < kW; ++l) {
        home0[next][l] = table.hash0(ahead[l]) & mask;
        home1[next][l] = table.hash1(ahead[l]) & mask;
        simd::prefetch_read(b0 + home0[next][l]);
        simd::prefetch_read(b1 + home1[next][l]);
      }
    }
    const __m256i vkey = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(events + g * kW)));
    const __m256i vq0 = [&] {
      const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(home0[g & 1]));
      return _mm256_add_epi64(_mm256_add_epi64(v, v), v);
    }();
    // First bucket: every lane reads (as the scalar loop does).
    reads += kW;
    const __m256i q0 = _mm256_mask_i64gather_epi64(vzero, qwords0, vq0, vall, 8);
    const __m256i q2 = _mm256_mask_i64gather_epi64(vzero, qwords0 + 2, vq0, vall, 8);
    const __m256i vocc0 =
        _mm256_andnot_si256(_mm256_cmpeq_epi64(_mm256_and_si256(q2, vbyte), vzero), vall);
    const __m256i vfound0 =
        _mm256_and_si256(vocc0, _mm256_cmpeq_epi64(_mm256_and_si256(q0, vlow32), vkey));
    __m256d vresult =
        _mm256_mask_i64gather_pd(_mm256_setzero_pd(), reinterpret_cast<const double*>(qwords0 + 1),
                                 vq0, _mm256_castsi256_pd(vfound0), 8);
    // Second bucket: only lanes the first bucket did not resolve.
    const __m256i vneed = _mm256_andnot_si256(vfound0, vall);
    const int need_lanes = _mm256_movemask_pd(_mm256_castsi256_pd(vneed));
    if (need_lanes != 0) {
      reads += static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(need_lanes)));
      const __m256i vq1 = [&] {
        const __m256i v = _mm256_load_si256(reinterpret_cast<const __m256i*>(home1[g & 1]));
        return _mm256_add_epi64(_mm256_add_epi64(v, v), v);
      }();
      const __m256i q0b = _mm256_mask_i64gather_epi64(vzero, qwords1, vq1, vneed, 8);
      const __m256i q2b = _mm256_mask_i64gather_epi64(vzero, qwords1 + 2, vq1, vneed, 8);
      const __m256i vocc1 =
          _mm256_andnot_si256(_mm256_cmpeq_epi64(_mm256_and_si256(q2b, vbyte), vzero), vall);
      const __m256i vfound1 = _mm256_and_si256(
          vneed,
          _mm256_and_si256(vocc1, _mm256_cmpeq_epi64(_mm256_and_si256(q0b, vlow32), vkey)));
      vresult = _mm256_mask_i64gather_pd(vresult, reinterpret_cast<const double*>(qwords1 + 1),
                                         vq1, _mm256_castsi256_pd(vfound1), 8);
    }
    _mm256_storeu_pd(out + g * kW, vresult);
  }

  reads += cuckoo_probe_tail(table, events + groups * kW, count - groups * kW,
                             out + groups * kW);
  return reads;
}

#endif  // ARE_PROBE_BODY_AVX2

#if defined(ARE_PROBE_BODY_AVX512)

std::uint64_t robin_hood_probe_avx512_body(const RobinHoodTable& table, const EventId* events,
                                           std::size_t count, double* out) noexcept {
  constexpr std::size_t kW = 8;
  const RobinHoodTable::Slot* slots = table.slot_data();
  const auto* qwords = reinterpret_cast<const long long*>(slots);
  const std::uint64_t mask = table.slot_mask();
  const std::size_t groups = count / kW;
  std::uint64_t reads = 0;

  alignas(64) std::uint64_t home[2][kW];
  for (std::size_t l = 0; l < kW && groups != 0; ++l) {
    home[0][l] = RobinHoodTable::hash(events[l]) & mask;
    simd::prefetch_read(slots + home[0][l]);
  }

  const __m512i vzero = _mm512_setzero_si512();
  const __m512i vone = _mm512_set1_epi64(1);
  const __m512i vlow32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i vbyte = _mm512_set1_epi64(0xffLL);
  const __m512i vmaskv = _mm512_set1_epi64(static_cast<long long>(mask));

  for (std::size_t g = 0; g < groups; ++g) {
    if (g + 1 < groups) {
      std::uint64_t* next = home[(g + 1) & 1];
      const EventId* ahead = events + (g + 1) * kW;
      for (std::size_t l = 0; l < kW; ++l) {
        next[l] = RobinHoodTable::hash(ahead[l]) & mask;
        simd::prefetch_read(slots + next[l]);
      }
    }
    const __m512i vkey = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(events + g * kW)));
    __m512i vidx = _mm512_load_si512(home[g & 1]);
    __m512i vdist = vzero;
    __mmask8 kactive = 0xff;
    __m512d vresult = _mm512_setzero_pd();
    while (kactive != 0) {
      reads += static_cast<unsigned>(__builtin_popcount(kactive));
      const __m512i vq = _mm512_add_epi64(_mm512_add_epi64(vidx, vidx), vidx);
      const __m512i q0 = _mm512_mask_i64gather_epi64(vzero, kactive, vq, qwords, 8);
      const __m512i q2 = _mm512_mask_i64gather_epi64(vzero, kactive, vq, qwords + 2, 8);
      const __mmask8 kocc = _mm512_test_epi64_mask(q2, vbyte);
      const __mmask8 kmatch =
          _mm512_cmpeq_epi64_mask(_mm512_and_si512(q0, vlow32), vkey);
      const __mmask8 kfound = kactive & kocc & kmatch;
      vresult = _mm512_mask_i64gather_pd(vresult, kfound, vq,
                                         reinterpret_cast<const double*>(qwords + 1), 8);
      const __mmask8 krich = _mm512_cmpgt_epi64_mask(vdist, _mm512_srli_epi64(q0, 32));
      kactive &= kocc & static_cast<__mmask8>(~kmatch) & static_cast<__mmask8>(~krich);
      vidx = _mm512_and_si512(_mm512_add_epi64(vidx, vone), vmaskv);
      vdist = _mm512_add_epi64(vdist, vone);
    }
    _mm512_storeu_pd(out + g * kW, vresult);
  }

  reads += robin_hood_probe_tail(table, events + groups * kW, count - groups * kW,
                                 out + groups * kW);
  return reads;
}

std::uint64_t cuckoo_probe_avx512_body(const CuckooTable& table, const EventId* events,
                                       std::size_t count, double* out) noexcept {
  constexpr std::size_t kW = 8;
  const CuckooTable::Slot* b0 = table.bucket_data(0);
  const CuckooTable::Slot* b1 = table.bucket_data(1);
  const auto* qwords0 = reinterpret_cast<const long long*>(b0);
  const auto* qwords1 = reinterpret_cast<const long long*>(b1);
  const std::uint64_t mask = table.slot_mask();
  const std::size_t groups = count / kW;
  std::uint64_t reads = 0;

  alignas(64) std::uint64_t home0[2][kW];
  alignas(64) std::uint64_t home1[2][kW];
  for (std::size_t l = 0; l < kW && groups != 0; ++l) {
    home0[0][l] = table.hash0(events[l]) & mask;
    home1[0][l] = table.hash1(events[l]) & mask;
    simd::prefetch_read(b0 + home0[0][l]);
    simd::prefetch_read(b1 + home1[0][l]);
  }

  const __m512i vzero = _mm512_setzero_si512();
  const __m512i vlow32 = _mm512_set1_epi64(0xffffffffLL);
  const __m512i vbyte = _mm512_set1_epi64(0xffLL);

  for (std::size_t g = 0; g < groups; ++g) {
    if (g + 1 < groups) {
      const std::size_t next = (g + 1) & 1;
      const EventId* ahead = events + (g + 1) * kW;
      for (std::size_t l = 0; l < kW; ++l) {
        home0[next][l] = table.hash0(ahead[l]) & mask;
        home1[next][l] = table.hash1(ahead[l]) & mask;
        simd::prefetch_read(b0 + home0[next][l]);
        simd::prefetch_read(b1 + home1[next][l]);
      }
    }
    const __m512i vkey = _mm512_cvtepu32_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(events + g * kW)));
    const __m512i vidx0 = _mm512_load_si512(home0[g & 1]);
    const __m512i vq0 = _mm512_add_epi64(_mm512_add_epi64(vidx0, vidx0), vidx0);
    reads += kW;
    const __m512i q0 = _mm512_mask_i64gather_epi64(vzero, 0xff, vq0, qwords0, 8);
    const __m512i q2 = _mm512_mask_i64gather_epi64(vzero, 0xff, vq0, qwords0 + 2, 8);
    const __mmask8 kocc0 = _mm512_test_epi64_mask(q2, vbyte);
    const __mmask8 kfound0 =
        kocc0 & _mm512_cmpeq_epi64_mask(_mm512_and_si512(q0, vlow32), vkey);
    __m512d vresult = _mm512_mask_i64gather_pd(
        _mm512_setzero_pd(), kfound0, vq0, reinterpret_cast<const double*>(qwords0 + 1), 8);
    const __mmask8 kneed = static_cast<__mmask8>(~kfound0);
    if (kneed != 0) {
      reads += static_cast<unsigned>(__builtin_popcount(kneed));
      const __m512i vidx1 = _mm512_load_si512(home1[g & 1]);
      const __m512i vq1 = _mm512_add_epi64(_mm512_add_epi64(vidx1, vidx1), vidx1);
      const __m512i q0b = _mm512_mask_i64gather_epi64(vzero, kneed, vq1, qwords1, 8);
      const __m512i q2b = _mm512_mask_i64gather_epi64(vzero, kneed, vq1, qwords1 + 2, 8);
      const __mmask8 kocc1 = _mm512_test_epi64_mask(q2b, vbyte);
      const __mmask8 kfound1 =
          kneed & kocc1 & _mm512_cmpeq_epi64_mask(_mm512_and_si512(q0b, vlow32), vkey);
      vresult = _mm512_mask_i64gather_pd(vresult, kfound1, vq1,
                                         reinterpret_cast<const double*>(qwords1 + 1), 8);
    }
    _mm512_storeu_pd(out + g * kW, vresult);
  }

  reads += cuckoo_probe_tail(table, events + groups * kW, count - groups * kW,
                             out + groups * kW);
  return reads;
}

#endif  // ARE_PROBE_BODY_AVX512

}  // namespace
}  // namespace are::elt::probe
