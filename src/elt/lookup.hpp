#pragma once

#include <cstddef>
#include <memory>
#include <string_view>

#include "elt/event_loss_table.hpp"

namespace are::elt {

/// The representations evaluated in the paper's design discussion
/// (§III-B): the direct access table it selects, and the compact
/// alternatives it argues against (sorted + binary search, classic hashing,
/// cuckoo hashing). `bench_ablation_elt_structures` measures the trade-off.
enum class LookupKind {
  kDirectAccess = 0,
  kSortedVector,
  kRobinHood,
  kCuckoo,
  /// Paged direct access: two accesses per lookup, memory proportional to
  /// touched pages — a midpoint the paper's design study motivates but
  /// does not evaluate.
  kPagedDirect,
};

constexpr std::string_view to_string(LookupKind kind) noexcept {
  switch (kind) {
    case LookupKind::kDirectAccess: return "direct_access";
    case LookupKind::kSortedVector: return "sorted_vector";
    case LookupKind::kRobinHood: return "robin_hood";
    case LookupKind::kCuckoo: return "cuckoo";
    case LookupKind::kPagedDirect: return "paged_direct";
  }
  return "unknown";
}

class DirectAccessTable;

/// Type-erased loss lookup. The engines are also templated on the concrete
/// types for zero-overhead dispatch; this interface exists for runtime
/// selection (CLI flags, ablation benches) and tests.
class ILossLookup {
 public:
  virtual ~ILossLookup() = default;

  /// Expected loss for `event`, 0.0 when the event is not in the table.
  virtual double lookup(EventId event) const noexcept = 0;

  /// Batch lookup: out[i] = lookup(events[i]) for i in [0, count). The
  /// SIMD engine feeds lane-width rows through this for representations
  /// that cannot be gathered directly (hash tables, decorators); the
  /// default simply loops, and implementations may override with a tighter
  /// loop. Must tolerate any event id, including catalog::kInvalidEvent
  /// (batch padding), returning 0.0 for ids not in the table.
  virtual void lookup_many(const EventId* events, std::size_t count,
                           double* out) const noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = lookup(events[i]);
  }

  /// Resident memory of the structure in bytes (the axis the paper trades
  /// against access count).
  virtual std::size_t memory_bytes() const noexcept = 0;

  virtual LookupKind kind() const noexcept = 0;

  /// Number of non-zero entries.
  virtual std::size_t entry_count() const noexcept = 0;

  /// Non-null iff this object really is a plain DirectAccessTable whose raw
  /// dense array the engines may read directly. Decorators (e.g.
  /// ScaledLookup over a direct table) must return null so the engines take
  /// the virtual path. Safer than trusting kind() for the downcast.
  virtual const DirectAccessTable* as_direct_access() const noexcept { return nullptr; }
};

/// Builds the requested representation from a compact ELT.
/// `catalog_size` bounds the event-id universe; required by the direct
/// access table (it allocates one slot per catalog event) and validated
/// against by all implementations.
std::unique_ptr<ILossLookup> make_lookup(LookupKind kind, const EventLossTable& table,
                                         std::size_t catalog_size);

}  // namespace are::elt
