#pragma once

#include <cstdint>

#include "elt/event_loss_table.hpp"

namespace are::elt {

/// Configuration for direct synthetic ELT generation. Engine-scale
/// benchmarks need ELTs with the paper's shape — 10K-30K non-zero losses
/// out of a catalog of up to 2M events — without paying for a full
/// catastrophe-model run; this generator produces that shape directly.
struct SyntheticEltConfig {
  std::size_t catalog_size = 2'000'000;
  std::size_t entries = 20'000;
  /// Pareto-Lomax severity for the losses (heavy tail, like real ELTs).
  double loss_alpha = 1.5;
  double loss_scale = 250'000.0;
  std::uint64_t seed = 1;
  /// Distinguishes the ELTs of one layer from each other.
  std::uint64_t elt_id = 0;
};

/// Draws `entries` distinct event ids uniformly from the catalog universe
/// with heavy-tailed losses. Deterministic in (seed, elt_id).
EventLossTable make_synthetic_elt(const SyntheticEltConfig& config);

}  // namespace are::elt
