#include <algorithm>
#include <bit>
#include <stdexcept>

#include "elt/cuckoo_table.hpp"
#include "elt/direct_access_table.hpp"
#include "elt/paged_direct_table.hpp"
#include "elt/probe_dispatch.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/sorted_table.hpp"
#include "obs/telemetry.hpp"
#include "simd/prefetch.hpp"

namespace are::elt {

namespace {

// Probe counters accumulate in locals inside the batch loops (a register
// increment, noise next to the memory traffic being counted) and flush to
// the registry once per lookup_many call, gated on obs::enabled(). The
// scalar lookup() entry points stay uninstrumented — the kernel only calls
// the batch path, and per-call gating there would cost more than it tells.

void validate_universe(const EventLossTable& table, std::size_t catalog_size) {
  if (!table.empty() && table.max_event() >= catalog_size) {
    throw std::invalid_argument("ELT contains an event id outside the catalog universe");
  }
}

std::size_t next_pow2(std::size_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

}  // namespace

DirectAccessTable::DirectAccessTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  losses_.assign(catalog_size, 0.0);
  for (const EventLoss& record : table.records()) {
    losses_[record.event] = record.loss;
    ++entries_;
  }
}

void DirectAccessTable::lookup_many(const EventId* events, std::size_t count,
                                    double* out) const noexcept {
  constexpr std::size_t kLookahead = 16;
  const double* data = losses_.data();
  const std::size_t universe = losses_.size();
  for (std::size_t i = 0; i < count; ++i) {
    if (i + kLookahead < count) {
      const EventId ahead = events[i + kLookahead];
      if (ahead < universe) simd::prefetch_read(data + ahead);
    }
    const EventId event = events[i];
    out[i] = event < universe ? data[event] : 0.0;
  }
  if (obs::enabled()) {
    static obs::Counter& lookups =
        obs::TelemetryRegistry::global().counter("elt.direct_access.lookups");
    lookups.add(count);
  }
}

void SortedTable::lookup_many(const EventId* events, std::size_t count,
                              double* out) const noexcept {
  constexpr std::size_t kGroup = 8;
  const std::size_t n = events_.size();
  std::uint64_t compares = 0;
  for (std::size_t base = 0; base < count; base += kGroup) {
    const std::size_t group = std::min(kGroup, count - base);
    std::size_t lo[kGroup];
    std::size_t hi[kGroup];
    std::size_t mid[kGroup];
    for (std::size_t q = 0; q < group; ++q) {
      lo[q] = 0;
      hi[q] = n;
    }
    // One level of every query's binary search per pass: all probes are
    // prefetched before the first compare touches any of them.
    for (bool active = n != 0; active;) {
      for (std::size_t q = 0; q < group; ++q) {
        if (lo[q] < hi[q]) {
          mid[q] = lo[q] + (hi[q] - lo[q]) / 2;
          simd::prefetch_read(events_.data() + mid[q]);
        }
      }
      active = false;
      for (std::size_t q = 0; q < group; ++q) {
        if (lo[q] >= hi[q]) continue;
        ++compares;
        if (events_[mid[q]] < events[base + q]) {
          lo[q] = mid[q] + 1;
        } else {
          hi[q] = mid[q];
        }
        active |= lo[q] < hi[q];
      }
    }
    for (std::size_t q = 0; q < group; ++q) {
      const std::size_t position = lo[q];
      out[base + q] =
          (position < n && events_[position] == events[base + q]) ? losses_[position] : 0.0;
    }
  }
  if (obs::enabled()) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    static obs::Counter& lookups = registry.counter("elt.sorted_vector.lookups");
    static obs::Counter& probes = registry.counter("elt.sorted_vector.probes");
    lookups.add(count);
    probes.add(compares);
  }
}

void RobinHoodTable::lookup_many(const EventId* events, std::size_t count,
                                 double* out) const noexcept {
  if (slots_.empty()) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0.0;
    return;
  }
  // Gathered probe path (AVX2/AVX-512): the runtime-dispatched kernel walks
  // the same probe chains with masked i64 gathers, W keys in lockstep, and
  // counts slot reads exactly like the scalar loop below.
  if (const probe::ProbeKernels& kernels = probe::active(); kernels.robin_hood != nullptr) {
    const std::uint64_t reads = kernels.robin_hood(*this, events, count, out);
    if (obs::enabled()) {
      obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
      static obs::Counter& lookups = registry.counter("elt.robin_hood.lookups");
      static obs::Counter& probes = registry.counter("elt.robin_hood.probes");
      lookups.add(count);
      probes.add(reads);
    }
    return;
  }
  std::uint64_t slot_reads = 0;
  constexpr std::size_t kLookahead = 8;
  std::size_t home[kLookahead];
  const std::size_t primed = std::min(kLookahead, count);
  for (std::size_t i = 0; i < primed; ++i) {
    home[i] = hash(events[i]) & mask_;
    simd::prefetch_read(slots_.data() + home[i]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t index = home[i % kLookahead];
    if (i + kLookahead < count) {
      const std::size_t ahead = hash(events[i + kLookahead]) & mask_;
      home[i % kLookahead] = ahead;  // the ring slot just consumed
      simd::prefetch_read(slots_.data() + ahead);
    }
    // Probe chain identical to lookup().
    const EventId event = events[i];
    double result = 0.0;
    std::uint32_t distance = 0;
    for (;;) {
      ++slot_reads;
      const Slot& slot = slots_[index];
      if (!slot.occupied) break;
      if (slot.event == event) {
        result = slot.loss;
        break;
      }
      if (distance > slot.distance) break;
      index = (index + 1) & mask_;
      ++distance;
    }
    out[i] = result;
  }
  if (obs::enabled()) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    static obs::Counter& lookups = registry.counter("elt.robin_hood.lookups");
    static obs::Counter& probes = registry.counter("elt.robin_hood.probes");
    lookups.add(count);
    probes.add(slot_reads);
  }
}

void CuckooTable::lookup_many(const EventId* events, std::size_t count,
                              double* out) const noexcept {
  if (buckets_[0].empty()) {
    for (std::size_t i = 0; i < count; ++i) out[i] = 0.0;
    return;
  }
  if (const probe::ProbeKernels& kernels = probe::active(); kernels.cuckoo != nullptr) {
    const std::uint64_t reads = kernels.cuckoo(*this, events, count, out);
    if (obs::enabled()) {
      obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
      static obs::Counter& lookups = registry.counter("elt.cuckoo.lookups");
      static obs::Counter& probes = registry.counter("elt.cuckoo.probes");
      lookups.add(count);
      probes.add(reads);
    }
    return;
  }
  std::uint64_t bucket_reads = 0;
  constexpr std::size_t kLookahead = 8;
  std::size_t home0[kLookahead];
  std::size_t home1[kLookahead];
  const std::size_t primed = std::min(kLookahead, count);
  for (std::size_t i = 0; i < primed; ++i) {
    home0[i] = hash0(events[i]) & mask_;
    home1[i] = hash1(events[i]) & mask_;
    simd::prefetch_read(buckets_[0].data() + home0[i]);
    simd::prefetch_read(buckets_[1].data() + home1[i]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t index0 = home0[i % kLookahead];
    const std::size_t index1 = home1[i % kLookahead];
    if (i + kLookahead < count) {
      const EventId ahead = events[i + kLookahead];
      const std::size_t slot = i % kLookahead;  // the ring slot just consumed
      home0[slot] = hash0(ahead) & mask_;
      home1[slot] = hash1(ahead) & mask_;
      simd::prefetch_read(buckets_[0].data() + home0[slot]);
      simd::prefetch_read(buckets_[1].data() + home1[slot]);
    }
    const EventId event = events[i];
    const Slot& first = buckets_[0][index0];
    ++bucket_reads;
    if (first.occupied && first.event == event) {
      out[i] = first.loss;
      continue;
    }
    const Slot& second = buckets_[1][index1];
    ++bucket_reads;
    out[i] = (second.occupied && second.event == event) ? second.loss : 0.0;
  }
  if (obs::enabled()) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    static obs::Counter& lookups = registry.counter("elt.cuckoo.lookups");
    static obs::Counter& probes = registry.counter("elt.cuckoo.probes");
    lookups.add(count);
    probes.add(bucket_reads);
  }
}

void PagedDirectTable::lookup_many(const EventId* events, std::size_t count,
                                   double* out) const noexcept {
  static constexpr double kZero = 0.0;
  constexpr std::size_t kBlock = 64;
  constexpr std::size_t kLookahead = 8;
  const double* slot_ptr[kBlock];
  std::uint64_t zero_hits = 0;
  for (std::size_t base = 0; base < count; base += kBlock) {
    const std::size_t block = std::min(kBlock, count - base);
    // Pass 1: resolve every slot address through the page table (its own
    // reads prefetched ahead) and prefetch the slots.
    for (std::size_t i = 0; i < block; ++i) {
      if (i + kLookahead < block) {
        const std::uint32_t ahead_page = events[base + i + kLookahead] >> kPageBits;
        if (ahead_page < page_table_.size()) {
          simd::prefetch_read(page_table_.data() + ahead_page);
        }
      }
      const EventId event = events[base + i];
      const std::uint32_t page = event >> kPageBits;
      if (page < page_table_.size()) {
        const std::uint32_t page_index = page_table_[page];
        zero_hits += page_index == 0;
        slot_ptr[i] = pages_[page_index].data() + (event & kPageMask);
        simd::prefetch_read(slot_ptr[i]);
      } else {
        ++zero_hits;
        slot_ptr[i] = &kZero;
      }
    }
    // Pass 2: the slot loads, now overlapped.
    for (std::size_t i = 0; i < block; ++i) out[base + i] = *slot_ptr[i];
  }
  if (obs::enabled()) {
    obs::TelemetryRegistry& registry = obs::TelemetryRegistry::global();
    static obs::Counter& lookups = registry.counter("elt.paged_direct.lookups");
    static obs::Counter& zero_page = registry.counter("elt.paged_direct.zero_page_hits");
    lookups.add(count);
    zero_page.add(zero_hits);
  }
}

SortedTable::SortedTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  events_.reserve(table.size());
  losses_.reserve(table.size());
  for (const EventLoss& record : table.records()) {
    events_.push_back(record.event);
    losses_.push_back(record.loss);
  }
}

RobinHoodTable::RobinHoodTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  const std::size_t capacity =
      next_pow2(static_cast<std::size_t>(static_cast<double>(table.size()) / kMaxLoadFactor) + 1);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (const EventLoss& record : table.records()) insert(record.event, record.loss);
}

void RobinHoodTable::insert(EventId event, double loss) {
  std::size_t index = hash(event) & mask_;
  Slot incoming{event, 0, loss, true};
  for (;;) {
    Slot& slot = slots_[index];
    if (!slot.occupied) {
      slot = incoming;
      ++entries_;
      return;
    }
    if (slot.event == incoming.event) {
      slot.loss = incoming.loss;
      return;
    }
    if (incoming.distance > slot.distance) std::swap(incoming, slot);
    index = (index + 1) & mask_;
    ++incoming.distance;
  }
}

std::uint32_t RobinHoodTable::max_probe_distance() const noexcept {
  std::uint32_t max_distance = 0;
  for (const Slot& slot : slots_) {
    if (slot.occupied) max_distance = std::max(max_distance, slot.distance);
  }
  return max_distance;
}

PagedDirectTable::PagedDirectTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  const std::size_t num_pages = (catalog_size + kPageSize - 1) / kPageSize;
  page_table_.assign(num_pages, 0);  // everything points at the zero page
  pages_.emplace_back();             // pages_[0]: shared all-zero page
  pages_[0].fill(0.0);

  for (const EventLoss& record : table.records()) {
    const std::uint32_t page = record.event >> kPageBits;
    if (page_table_[page] == 0) {
      page_table_[page] = static_cast<std::uint32_t>(pages_.size());
      pages_.emplace_back();
      pages_.back().fill(0.0);
    }
    pages_[page_table_[page]][record.event & kPageMask] = record.loss;
    ++entries_;
  }
}

CuckooTable::CuckooTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  build(table);
}

void CuckooTable::build(const EventLossTable& table) {
  // Each of the two tables holds `capacity` slots; combined load <= 50% at
  // the initial sizing, which keeps insertion cycles rare.
  std::size_t capacity = next_pow2(table.size() + 1);
  for (int attempt = 0; attempt < 64; ++attempt) {
    buckets_[0].assign(capacity, Slot{});
    buckets_[1].assign(capacity, Slot{});
    mask_ = capacity - 1;
    entries_ = 0;
    bool ok = true;
    for (const EventLoss& record : table.records()) {
      if (!try_insert(record.event, record.loss)) {
        ok = false;
        break;
      }
    }
    if (ok) return;
    // Cycle: rehash with fresh seeds; every other failure, also grow.
    ++rebuilds_;
    seed0_ = seed0_ * 6364136223846793005ULL + 1442695040888963407ULL;
    seed1_ = seed1_ * 2862933555777941757ULL + 3037000493ULL;
    if (rebuilds_ % 2 == 0) capacity *= 2;
  }
  throw std::runtime_error("cuckoo table failed to build after 64 rehash attempts");
}

bool CuckooTable::try_insert(EventId event, double loss) {
  // Update in place if present.
  for (int side = 0; side < 2; ++side) {
    const std::size_t index =
        (side == 0 ? hash0(event) : hash1(event)) & mask_;
    Slot& slot = buckets_[side][index];
    if (slot.occupied && slot.event == event) {
      slot.loss = loss;
      return true;
    }
  }

  Slot incoming{event, loss, true};
  int side = 0;
  // The displacement chain length bound: past this we declare a cycle.
  const int max_kicks = 32 + static_cast<int>(std::bit_width(mask_ + 1)) * 4;
  for (int kick = 0; kick < max_kicks; ++kick) {
    const std::size_t index =
        (side == 0 ? hash0(incoming.event) : hash1(incoming.event)) & mask_;
    Slot& slot = buckets_[side][index];
    if (!slot.occupied) {
      slot = incoming;
      ++entries_;
      return true;
    }
    std::swap(incoming, slot);
    side ^= 1;
  }
  return false;
}

std::unique_ptr<ILossLookup> make_lookup(LookupKind kind, const EventLossTable& table,
                                         std::size_t catalog_size) {
  switch (kind) {
    case LookupKind::kDirectAccess:
      return std::make_unique<DirectAccessTable>(table, catalog_size);
    case LookupKind::kSortedVector:
      return std::make_unique<SortedTable>(table, catalog_size);
    case LookupKind::kRobinHood:
      return std::make_unique<RobinHoodTable>(table, catalog_size);
    case LookupKind::kCuckoo:
      return std::make_unique<CuckooTable>(table, catalog_size);
    case LookupKind::kPagedDirect:
      return std::make_unique<PagedDirectTable>(table, catalog_size);
  }
  throw std::invalid_argument("unknown lookup kind");
}

}  // namespace are::elt
