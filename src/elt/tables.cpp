#include <algorithm>
#include <bit>
#include <stdexcept>

#include "elt/cuckoo_table.hpp"
#include "elt/direct_access_table.hpp"
#include "elt/paged_direct_table.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/sorted_table.hpp"

namespace are::elt {

namespace {

void validate_universe(const EventLossTable& table, std::size_t catalog_size) {
  if (!table.empty() && table.max_event() >= catalog_size) {
    throw std::invalid_argument("ELT contains an event id outside the catalog universe");
  }
}

std::size_t next_pow2(std::size_t n) {
  return n <= 1 ? 1 : std::bit_ceil(n);
}

}  // namespace

DirectAccessTable::DirectAccessTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  losses_.assign(catalog_size, 0.0);
  for (const EventLoss& record : table.records()) {
    losses_[record.event] = record.loss;
    ++entries_;
  }
}

SortedTable::SortedTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  events_.reserve(table.size());
  losses_.reserve(table.size());
  for (const EventLoss& record : table.records()) {
    events_.push_back(record.event);
    losses_.push_back(record.loss);
  }
}

RobinHoodTable::RobinHoodTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  const std::size_t capacity =
      next_pow2(static_cast<std::size_t>(static_cast<double>(table.size()) / kMaxLoadFactor) + 1);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (const EventLoss& record : table.records()) insert(record.event, record.loss);
}

void RobinHoodTable::insert(EventId event, double loss) {
  std::size_t index = hash(event) & mask_;
  Slot incoming{event, 0, loss, true};
  for (;;) {
    Slot& slot = slots_[index];
    if (!slot.occupied) {
      slot = incoming;
      ++entries_;
      return;
    }
    if (slot.event == incoming.event) {
      slot.loss = incoming.loss;
      return;
    }
    if (incoming.distance > slot.distance) std::swap(incoming, slot);
    index = (index + 1) & mask_;
    ++incoming.distance;
  }
}

std::uint32_t RobinHoodTable::max_probe_distance() const noexcept {
  std::uint32_t max_distance = 0;
  for (const Slot& slot : slots_) {
    if (slot.occupied) max_distance = std::max(max_distance, slot.distance);
  }
  return max_distance;
}

PagedDirectTable::PagedDirectTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  const std::size_t num_pages = (catalog_size + kPageSize - 1) / kPageSize;
  page_table_.assign(num_pages, 0);  // everything points at the zero page
  pages_.emplace_back();             // pages_[0]: shared all-zero page
  pages_[0].fill(0.0);

  for (const EventLoss& record : table.records()) {
    const std::uint32_t page = record.event >> kPageBits;
    if (page_table_[page] == 0) {
      page_table_[page] = static_cast<std::uint32_t>(pages_.size());
      pages_.emplace_back();
      pages_.back().fill(0.0);
    }
    pages_[page_table_[page]][record.event & kPageMask] = record.loss;
    ++entries_;
  }
}

CuckooTable::CuckooTable(const EventLossTable& table, std::size_t catalog_size) {
  validate_universe(table, catalog_size);
  build(table);
}

void CuckooTable::build(const EventLossTable& table) {
  // Each of the two tables holds `capacity` slots; combined load <= 50% at
  // the initial sizing, which keeps insertion cycles rare.
  std::size_t capacity = next_pow2(table.size() + 1);
  for (int attempt = 0; attempt < 64; ++attempt) {
    buckets_[0].assign(capacity, Slot{});
    buckets_[1].assign(capacity, Slot{});
    mask_ = capacity - 1;
    entries_ = 0;
    bool ok = true;
    for (const EventLoss& record : table.records()) {
      if (!try_insert(record.event, record.loss)) {
        ok = false;
        break;
      }
    }
    if (ok) return;
    // Cycle: rehash with fresh seeds; every other failure, also grow.
    ++rebuilds_;
    seed0_ = seed0_ * 6364136223846793005ULL + 1442695040888963407ULL;
    seed1_ = seed1_ * 2862933555777941757ULL + 3037000493ULL;
    if (rebuilds_ % 2 == 0) capacity *= 2;
  }
  throw std::runtime_error("cuckoo table failed to build after 64 rehash attempts");
}

bool CuckooTable::try_insert(EventId event, double loss) {
  // Update in place if present.
  for (int side = 0; side < 2; ++side) {
    const std::size_t index =
        (side == 0 ? hash0(event) : hash1(event)) & mask_;
    Slot& slot = buckets_[side][index];
    if (slot.occupied && slot.event == event) {
      slot.loss = loss;
      return true;
    }
  }

  Slot incoming{event, loss, true};
  int side = 0;
  // The displacement chain length bound: past this we declare a cycle.
  const int max_kicks = 32 + static_cast<int>(std::bit_width(mask_ + 1)) * 4;
  for (int kick = 0; kick < max_kicks; ++kick) {
    const std::size_t index =
        (side == 0 ? hash0(incoming.event) : hash1(incoming.event)) & mask_;
    Slot& slot = buckets_[side][index];
    if (!slot.occupied) {
      slot = incoming;
      ++entries_;
      return true;
    }
    std::swap(incoming, slot);
    side ^= 1;
  }
  return false;
}

std::unique_ptr<ILossLookup> make_lookup(LookupKind kind, const EventLossTable& table,
                                         std::size_t catalog_size) {
  switch (kind) {
    case LookupKind::kDirectAccess:
      return std::make_unique<DirectAccessTable>(table, catalog_size);
    case LookupKind::kSortedVector:
      return std::make_unique<SortedTable>(table, catalog_size);
    case LookupKind::kRobinHood:
      return std::make_unique<RobinHoodTable>(table, catalog_size);
    case LookupKind::kCuckoo:
      return std::make_unique<CuckooTable>(table, catalog_size);
    case LookupKind::kPagedDirect:
      return std::make_unique<PagedDirectTable>(table, catalog_size);
  }
  throw std::invalid_argument("unknown lookup kind");
}

}  // namespace are::elt
