#include "elt/synthetic.hpp"

#include <stdexcept>
#include <unordered_set>

#include "rng/distributions.hpp"
#include "rng/stream.hpp"

namespace are::elt {

EventLossTable make_synthetic_elt(const SyntheticEltConfig& config) {
  if (config.entries > config.catalog_size) {
    throw std::invalid_argument("synthetic ELT cannot have more entries than catalog events");
  }
  if (config.entries == 0) return EventLossTable{};

  rng::Stream stream(config.seed, /*stream_id=*/4, /*substream_id=*/config.elt_id);

  std::vector<EventLoss> records;
  records.reserve(config.entries);

  if (config.entries * 3 >= config.catalog_size) {
    // Dense regime: Floyd's algorithm would thrash; do a selection sweep.
    std::size_t needed = config.entries;
    std::size_t remaining = config.catalog_size;
    for (std::size_t id = 0; id < config.catalog_size && needed > 0; ++id, --remaining) {
      if (stream.uniform_below(remaining) < needed) {
        const double loss =
            rng::sample_pareto_lomax(stream, config.loss_alpha, config.loss_scale) + 1.0;
        records.push_back({static_cast<EventId>(id), loss});
        --needed;
      }
    }
  } else {
    // Sparse regime: rejection sampling of distinct ids.
    std::unordered_set<EventId> chosen;
    chosen.reserve(config.entries * 2);
    while (chosen.size() < config.entries) {
      const auto id = static_cast<EventId>(stream.uniform_below(config.catalog_size));
      if (chosen.insert(id).second) {
        const double loss =
            rng::sample_pareto_lomax(stream, config.loss_alpha, config.loss_scale) + 1.0;
        records.push_back({id, loss});
      }
    }
  }

  return EventLossTable(std::move(records));
}

}  // namespace are::elt
