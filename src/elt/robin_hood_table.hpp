#pragma once

#include <cstdint>
#include <vector>

#include "elt/lookup.hpp"

namespace are::elt {

/// Open-addressing hash table with Robin Hood displacement — the "classic
/// hashing" point in the design space: expected O(1) probes, compact
/// relative to the direct access table, but each probe is a random access
/// and probe chains grow with load factor.
class RobinHoodTable final : public ILossLookup {
 public:
  static constexpr double kMaxLoadFactor = 0.7;

  RobinHoodTable(const EventLossTable& table, std::size_t catalog_size);

  double lookup(EventId event) const noexcept override {
    if (slots_.empty()) return 0.0;
    std::size_t index = hash(event) & mask_;
    std::uint32_t distance = 0;
    for (;;) {
      const Slot& slot = slots_[index];
      if (!slot.occupied) return 0.0;
      if (slot.event == event) return slot.loss;
      // Robin Hood invariant: if our probe distance exceeds the resident's,
      // the key cannot be further along.
      if (distance > slot.distance) return 0.0;
      index = (index + 1) & mask_;
      ++distance;
    }
  }

  /// Batch path: home slots are pure functions of the ids, so a lookahead
  /// window hashes + prefetches several probes ahead of the compare loop.
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override;

  std::size_t memory_bytes() const noexcept override { return slots_.size() * sizeof(Slot); }
  LookupKind kind() const noexcept override { return LookupKind::kRobinHood; }
  std::size_t entry_count() const noexcept override { return entries_; }

  /// Longest probe chain over all occupied slots (test/diagnostic hook).
  std::uint32_t max_probe_distance() const noexcept;

  /// Slot layout and the raw array accessors are public for the gathered
  /// probe kernels (src/elt/probe_dispatch.hpp): a vectorized probe reads
  /// slots as three 64-bit gathers (event|distance, loss, occupied+pad), so
  /// the layout below is load-bearing — 24 bytes, qword-aligned fields.
  struct Slot {
    EventId event = 0;
    std::uint32_t distance = 0;
    double loss = 0.0;
    bool occupied = false;
  };
  static_assert(sizeof(Slot) == 24, "probe kernels gather slots as 3 qwords");

  static std::uint64_t hash(EventId event) noexcept {
    // Fibonacci-style 64-bit mix of the 32-bit id.
    std::uint64_t x = event;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  const Slot* slot_data() const noexcept { return slots_.data(); }
  std::size_t slot_mask() const noexcept { return mask_; }

 private:
  void insert(EventId event, double loss);

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t entries_ = 0;
};

}  // namespace are::elt
