#pragma once

#include <memory>

#include "elt/lookup.hpp"

namespace are::elt {

/// Decorator that scales every loss of an underlying lookup by a constant
/// factor — the severity-stress primitive. Scaling the ELT losses (rather
/// than the YLT output) is the correct stress for non-linear layers: a
/// +20% severity stress attaches layers that the base book never touched,
/// which an output-side scale cannot capture.
///
/// Typical uses: climate-trend loading on a hurricane book, currency
/// devaluation on a foreign book, inflation adjustment of stale ELTs.
class ScaledLookup final : public ILossLookup {
 public:
  ScaledLookup(std::shared_ptr<const ILossLookup> base, double factor)
      : base_(std::move(base)), factor_(factor) {
    if (!base_) throw std::invalid_argument("scaled lookup needs a base table");
    if (!(factor >= 0.0)) throw std::invalid_argument("scale factor must be >= 0");
  }

  double lookup(EventId event) const noexcept override {
    return factor_ * base_->lookup(event);
  }

  /// Forwards the batch to the base table's (prefetching) override, then
  /// scales in place — so decorating an ELT keeps the fused/simd engines'
  /// batched lookup path instead of degrading to the scalar default loop.
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override {
    base_->lookup_many(events, count, out);
    for (std::size_t i = 0; i < count; ++i) out[i] *= factor_;
  }

  std::size_t memory_bytes() const noexcept override { return base_->memory_bytes(); }
  LookupKind kind() const noexcept override { return base_->kind(); }
  std::size_t entry_count() const noexcept override { return base_->entry_count(); }

  double factor() const noexcept { return factor_; }
  const ILossLookup& base() const noexcept { return *base_; }

 private:
  std::shared_ptr<const ILossLookup> base_;
  double factor_;
};

}  // namespace are::elt
