#include "elt/event_loss_table.hpp"

#include <algorithm>
#include <cmath>

namespace are::elt {

EventLossTable::EventLossTable(std::vector<EventLoss> records) : records_(std::move(records)) {
  for (const EventLoss& record : records_) {
    if (!(record.loss >= 0.0) || !std::isfinite(record.loss)) {
      throw std::invalid_argument("event losses must be finite and non-negative");
    }
    if (record.event == catalog::kInvalidEvent) {
      throw std::invalid_argument("invalid event id in ELT record");
    }
  }
  std::sort(records_.begin(), records_.end(),
            [](const EventLoss& a, const EventLoss& b) { return a.event < b.event; });
  // Coalesce duplicates by summation.
  std::size_t write = 0;
  for (std::size_t read = 0; read < records_.size(); ++read) {
    if (write > 0 && records_[write - 1].event == records_[read].event) {
      records_[write - 1].loss += records_[read].loss;
    } else {
      records_[write++] = records_[read];
    }
  }
  records_.resize(write);
}

double EventLossTable::loss_for(EventId event) const noexcept {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), event,
      [](const EventLoss& record, EventId id) { return record.event < id; });
  return (it != records_.end() && it->event == event) ? it->loss : 0.0;
}

double EventLossTable::total_loss() const noexcept {
  double total = 0.0;
  for (const EventLoss& record : records_) total += record.loss;
  return total;
}

}  // namespace are::elt
