#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "catalog/types.hpp"

namespace are::elt {

using catalog::EventId;

/// One record of an Event Loss Table: an event and its expected loss with
/// respect to one exposure set (paper §II-A, `EL_i = {E_i, l_i}`).
struct EventLoss {
  EventId event = 0;
  double loss = 0.0;

  friend bool operator==(const EventLoss&, const EventLoss&) = default;
};

/// The canonical compact ELT: records sorted by event id, unique events.
/// This is the *source of truth* representation produced by the catastrophe
/// model; the engine-facing lookup structures (direct access table, hashes,
/// ...) are built from it.
class EventLossTable {
 public:
  EventLossTable() = default;

  /// Takes records in any order; sorts and validates. Duplicate event ids
  /// are summed (two sub-exposures of the same event accumulate).
  explicit EventLossTable(std::vector<EventLoss> records);

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  std::span<const EventLoss> records() const noexcept { return records_; }

  /// Largest event id present, or 0 when empty.
  EventId max_event() const noexcept { return records_.empty() ? 0 : records_.back().event; }

  /// Exact lookup by binary search — reference semantics for tests; the
  /// performance-critical paths use the lookup structures instead.
  double loss_for(EventId event) const noexcept;

  double total_loss() const noexcept;

 private:
  std::vector<EventLoss> records_;
};

}  // namespace are::elt
