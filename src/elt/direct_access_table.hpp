#pragma once

#include <vector>

#include "elt/lookup.hpp"

namespace are::elt {

/// The paper's chosen ELT representation: a dense array of losses indexed
/// directly by event id. "Highly sparse ... very fast lookup performance at
/// the cost of high memory usage" — e.g. a 2M-event catalog with a 20K-entry
/// ELT stores 2M doubles of which 1.98M are zero, but every lookup is a
/// single memory access, which matters because aggregate analysis is
/// memory-access bound (78% of time in ELT lookups, Fig 6b).
class DirectAccessTable final : public ILossLookup {
 public:
  DirectAccessTable(const EventLossTable& table, std::size_t catalog_size);

  double lookup(EventId event) const noexcept override {
    // A single dependent load; out-of-universe ids return 0 via the guard.
    return event < losses_.size() ? losses_[event] : 0.0;
  }

  /// Batch path: same guarded loads with the probe target prefetched a few
  /// iterations ahead (the ids are known, only the loads are random).
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override;

  std::size_t memory_bytes() const noexcept override {
    return losses_.size() * sizeof(double);
  }

  LookupKind kind() const noexcept override { return LookupKind::kDirectAccess; }
  std::size_t entry_count() const noexcept override { return entries_; }
  const DirectAccessTable* as_direct_access() const noexcept override { return this; }

  /// Raw dense view for the chunked/simgpu kernels, which model coalesced
  /// array access explicitly.
  const double* data() const noexcept { return losses_.data(); }
  std::size_t universe() const noexcept { return losses_.size(); }

 private:
  std::vector<double> losses_;
  std::size_t entries_ = 0;
};

}  // namespace are::elt
