#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "elt/lookup.hpp"

namespace are::elt {

/// Paged direct access table: a midpoint in the paper's trade-off space
/// that the paper does not explore. The event-id universe is split into
/// fixed-size pages; a page table maps page number -> dense loss page, and
/// every page with no entries shares one all-zero page. Lookup is exactly
/// *two* dependent memory accesses (page table, then slot) — one more than
/// the direct access table, log(n)-fewer than binary search — while memory
/// is proportional to the number of *touched* pages rather than the whole
/// catalog.
///
/// For the paper's shapes (20K entries uniform over 2M ids, 512-slot
/// pages) nearly every page is touched, so this degenerates to direct
/// access + page-table overhead; for *clustered* ELTs (regional books whose
/// events share catalog ranges) it saves most of the memory. The ablation
/// bench reports both.
class PagedDirectTable final : public ILossLookup {
 public:
  static constexpr std::uint32_t kPageBits = 9;  // 512 slots = 4 KB pages
  static constexpr std::uint32_t kPageSize = 1u << kPageBits;
  static constexpr std::uint32_t kPageMask = kPageSize - 1;

  PagedDirectTable(const EventLossTable& table, std::size_t catalog_size);

  double lookup(EventId event) const noexcept override {
    const std::uint32_t page = event >> kPageBits;
    if (page >= page_table_.size()) return 0.0;
    return pages_[page_table_[page]][event & kPageMask];
  }

  /// Batch path: the two dependent accesses are split into two passes over
  /// a small block — pass one resolves (and prefetches) every slot address
  /// through the page table, pass two reads the slots.
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override;

  std::size_t memory_bytes() const noexcept override {
    return page_table_.size() * sizeof(std::uint32_t) +
           pages_.size() * kPageSize * sizeof(double);
  }

  LookupKind kind() const noexcept override { return LookupKind::kPagedDirect; }
  std::size_t entry_count() const noexcept override { return entries_; }

  /// Pages actually materialised (excluding the shared zero page).
  std::size_t touched_pages() const noexcept { return pages_.size() - 1; }
  std::size_t total_pages() const noexcept { return page_table_.size(); }

 private:
  /// pages_[0] is the shared all-zero page.
  std::vector<std::array<double, kPageSize>> pages_;
  std::vector<std::uint32_t> page_table_;
  std::size_t entries_ = 0;
};

}  // namespace are::elt
