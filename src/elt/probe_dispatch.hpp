#pragma once

// Runtime-dispatched vectorized hash probing for the robin-hood and cuckoo
// tables' lookup_many — the hash-table counterpart of the trial kernel's
// per-extension dispatch (simd/dispatch.hpp), modeled on SIMDOperators'
// vectorized linear probing.
//
// Both tables' 24-byte slots are read as three 64-bit gathers per probe
// round (event|distance, loss, occupied) across all lanes in lockstep,
// with a per-lane active mask retiring lanes as their probe chain ends and
// a scalar tail for the last count % lanes keys. Results are the exact
// slot values the scalar probe loop reads, so the output — and the probe
// telemetry (one counted read per active lane per round) — is identical
// byte-for-byte to the scalar path on every extension.
//
// Only extensions with a hardware gather participate (AVX2, AVX-512);
// SSE2/NEON hosts keep the scalar prefetch-ring loops in tables.cpp. The
// per-extension entry points are defined in the same per-ISA translation
// units as the trial kernel (src/core/kernel_ext_{avx2,avx512}.cpp), so
// they exist exactly when the matching ARE_KERNEL_TU_* macro says so.

#include <cstddef>
#include <cstdint>
#include <optional>

#include "elt/cuckoo_table.hpp"
#include "elt/robin_hood_table.hpp"
#include "simd/dispatch.hpp"

namespace are::elt::probe {

/// The per-extension batch-probe entry points a table's lookup_many can
/// run. Null members mean "no vectorized path — use the scalar loop".
/// Each function fills out[0, count) and returns the number of slot/bucket
/// reads performed (the tables' probe telemetry), matching the scalar
/// loops' counting exactly.
struct ProbeKernels {
  using RobinHoodFn = std::uint64_t (*)(const RobinHoodTable& table, const EventId* events,
                                        std::size_t count, double* out);
  using CuckooFn = std::uint64_t (*)(const CuckooTable& table, const EventId* events,
                                     std::size_t count, double* out);
  RobinHoodFn robin_hood = nullptr;
  CuckooFn cuckoo = nullptr;
  const char* name = "scalar";
};

/// The kernels lookup_many dispatches through, resolved once from
/// simd::best_extension() (so ARE_SIMD_EXT steers probing too) and cached.
const ProbeKernels& active() noexcept;

/// Bench/test hook: pin the probe path to one extension (which must be
/// compiled in AND runnable on this host, or the scalar kernels are
/// returned), or std::nullopt to drop the pin and re-resolve from the
/// dispatch state on next use. Not for concurrent use with live lookups.
void force_extension(std::optional<simd::Extension> extension) noexcept;

// Per-ISA entry points, defined in src/core/kernel_ext_{avx2,avx512}.cpp.
// Referenced only under the matching ARE_KERNEL_TU_* macro.
std::uint64_t robin_hood_probe_avx2(const RobinHoodTable& table, const EventId* events,
                                    std::size_t count, double* out);
std::uint64_t cuckoo_probe_avx2(const CuckooTable& table, const EventId* events,
                                std::size_t count, double* out);
std::uint64_t robin_hood_probe_avx512(const RobinHoodTable& table, const EventId* events,
                                      std::size_t count, double* out);
std::uint64_t cuckoo_probe_avx512(const CuckooTable& table, const EventId* events,
                                  std::size_t count, double* out);

}  // namespace are::elt::probe
