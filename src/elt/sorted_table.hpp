#pragma once

#include <vector>

#include "elt/lookup.hpp"

namespace are::elt {

/// Compact representation the paper argues against: events sorted by id,
/// lookup by binary search. O(log n) random memory accesses per lookup —
/// each a dependent cache miss at catastrophe-model ELT sizes.
/// Structure-of-arrays layout keeps the key probe sequence dense.
class SortedTable final : public ILossLookup {
 public:
  SortedTable(const EventLossTable& table, std::size_t catalog_size);

  double lookup(EventId event) const noexcept override {
    std::size_t lo = 0;
    std::size_t hi = events_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (events_[mid] < event) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return (lo < events_.size() && events_[lo] == event) ? losses_[lo] : 0.0;
  }

  /// Batch path: a group of binary searches advanced in lockstep, one level
  /// per pass, with every query's next probe element prefetched before any
  /// compare — the log(n) dependent misses of one search overlap across the
  /// group instead of serialising. Identical lo/hi updates to lookup().
  void lookup_many(const EventId* events, std::size_t count, double* out) const noexcept override;

  std::size_t memory_bytes() const noexcept override {
    return events_.size() * sizeof(EventId) + losses_.size() * sizeof(double);
  }

  LookupKind kind() const noexcept override { return LookupKind::kSortedVector; }
  std::size_t entry_count() const noexcept override { return events_.size(); }

 private:
  std::vector<EventId> events_;
  std::vector<double> losses_;
};

}  // namespace are::elt
