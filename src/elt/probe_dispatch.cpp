#include "elt/probe_dispatch.hpp"

#include <atomic>

namespace are::elt::probe {

namespace {

const ProbeKernels& kernels_for(simd::Extension extension) noexcept {
  static const ProbeKernels scalar{};
  switch (extension) {
#if defined(ARE_KERNEL_TU_AVX2)
    case simd::Extension::kAvx2: {
      static const ProbeKernels avx2{&robin_hood_probe_avx2, &cuckoo_probe_avx2, "avx2"};
      return avx2;
    }
#endif
#if defined(ARE_KERNEL_TU_AVX512)
    case simd::Extension::kAvx512: {
      static const ProbeKernels avx512{&robin_hood_probe_avx512, &cuckoo_probe_avx512,
                                       "avx512"};
      return avx512;
    }
#endif
    default: return scalar;
  }
}

// Null = unresolved; active() resolves from the dispatch state and caches.
std::atomic<const ProbeKernels*> g_active{nullptr};

}  // namespace

const ProbeKernels& active() noexcept {
  const ProbeKernels* kernels = g_active.load(std::memory_order_acquire);
  if (kernels == nullptr) {
    // best_extension() is runnable by construction (detected ∩ compiled),
    // so wide gathers are only ever selected on hosts that execute them.
    kernels = &kernels_for(simd::best_extension());
    g_active.store(kernels, std::memory_order_release);
  }
  return *kernels;
}

void force_extension(std::optional<simd::Extension> extension) noexcept {
  g_active.store(extension ? &kernels_for(*extension) : nullptr, std::memory_order_release);
}

}  // namespace are::elt::probe
