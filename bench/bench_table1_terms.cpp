// Table I companion: the four layer terms (TOccR, TOccL, TAggR, TAggL) and
// their effect. Table I itself is a definitions table; this bench sweeps
// term regimes over a fixed book and reports both the runtime (term
// application is branch-light arithmetic — runtime should be flat) and the
// resulting expected ceded loss (which the terms reshape dramatically).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "metrics/statistics.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

struct TermRegime {
  const char* name;
  financial::LayerTerms terms;
};

std::vector<TermRegime> regimes() {
  return {
      {"ground_up", financial::LayerTerms{}},
      {"cat_xl_low", financial::LayerTerms::cat_xl(100e3, 5e6)},
      {"cat_xl_high", financial::LayerTerms::cat_xl(2e6, 20e6)},
      {"agg_xl", financial::LayerTerms::aggregate_xl(5e6, 50e6)},
      {"combined", {500e3, 10e6, 1e6, 100e6}},
  };
}

void table1_regime(benchmark::State& state) {
  const auto regime = regimes()[static_cast<std::size_t>(state.range(0))];
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
  core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);
  portfolio.layers[0].terms = regime.terms;

  double expected_loss = 0.0;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    expected_loss = metrics::summarize(ylt.layer_losses(0)).mean();
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["expected_loss"] = expected_loss;
  state.SetLabel(regime.name);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Table I companion: layer-term regimes. Runtime should be flat "
      "across regimes (terms are O(1) arithmetic); expected ceded loss "
      "should differ by orders of magnitude.");
  for (std::size_t regime = 0; regime < regimes().size(); ++regime) {
    benchmark::RegisterBenchmark("table1/regime", table1_regime)
        ->Arg(static_cast<long>(regime))
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
