// Ablation: trial-partitioning strategy for the parallel engine. The paper
// assigns one thread per trial with OpenMP's default scheduling; with
// Poisson/negative-binomial trial sizes the work per trial varies, so
// static block partitioning can load-imbalance where dynamic/guided
// self-balance at the cost of contention on the work cursor.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

/// A deliberately skewed YET: negative-binomial with low dispersion makes
/// some trials several times larger than others.
const yet::YearEventTable& skewed_yet() {
  static const yet::YearEventTable table = [] {
    yet::YetConfig config;
    config.num_trials = kScale.trials / 2;
    config.events_per_trial = kScale.events_per_trial;
    config.count_model = yet::CountModel::kNegativeBinomial;
    config.dispersion = 2.0;  // Var = mean * (1 + mean/2): heavy skew
    config.seed = 99;
    return yet::generate_uniform_yet(config, kScale.catalog_size);
  }();
  return table;
}

void partition_bench(benchmark::State& state) {
  const auto partition = static_cast<parallel::Partition>(state.range(0));
  const auto chunk = static_cast<std::size_t>(state.range(1));
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kParallel;
  config.partition = partition;
  config.partition_chunk = chunk;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, skewed_yet(), config);
    benchmark::DoNotOptimize(ylt);
  }
  switch (partition) {
    case parallel::Partition::kStatic: state.SetLabel("static"); break;
    case parallel::Partition::kDynamic: state.SetLabel("dynamic"); break;
    case parallel::Partition::kGuided: state.SetLabel("guided"); break;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "partition ablation on a skewed (negative-binomial) YET: dynamic/"
      "guided self-balance variable trial sizes; static has no cursor "
      "contention. On a single-core host all are equivalent (run on a "
      "multicore host to see the spread).");
  for (int partition = 0; partition < 3; ++partition) {
    for (long chunk : {16, 256}) {
      benchmark::RegisterBenchmark("ablation/partition", partition_bench)
          ->Args({partition, chunk})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
