// Figure 6b: percentage of time in the four phases of the algorithm —
// fetching events, ELT lookup in the direct access table, financial term
// calculations, layer term calculations. The paper reports ~78% of the
// time in ELT lookups, the basis of its memory-bound analysis.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig6b_instrumented(benchmark::State& state) {
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::InstrumentationSink sink;
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kInstrumented;
  config.instrumentation = &sink;
  core::PhaseBreakdown phases;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    phases = *sink.phases;
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["fetch_pct"] = 100.0 * phases.fetch_fraction();
  state.counters["lookup_pct"] = 100.0 * phases.lookup_fraction();
  state.counters["financial_pct"] = 100.0 * phases.financial_fraction();
  state.counters["layer_pct"] = 100.0 * phases.layer_fraction();
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 6b reproduction: phase breakdown of the instrumented engine "
      "(direct access tables, 15 ELTs).");

  // One up-front instrumented run with the breakdown printed as a series.
  {
    const auto yet_table = bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
    const auto portfolio = bench::make_portfolio(kScale, 1, 15);
    core::InstrumentationSink sink;
    core::AnalysisConfig config;
    config.engine = core::EngineKind::kInstrumented;
    config.instrumentation = &sink;
    bench::run(portfolio, yet_table, config);
    const core::PhaseBreakdown& phases = *sink.phases;
    bench::print_row("fig6b", "phase_fetch", 0, "percent", 100.0 * phases.fetch_fraction());
    bench::print_row("fig6b", "phase_lookup", 1, "percent", 100.0 * phases.lookup_fraction());
    bench::print_row("fig6b", "phase_financial", 2, "percent",
                     100.0 * phases.financial_fraction());
    bench::print_row("fig6b", "phase_layer", 3, "percent", 100.0 * phases.layer_fraction());
    bench::print_note("paper reference: ~78% ELT lookup; lookup must dominate all other phases");
  }

  benchmark::RegisterBenchmark("fig6b/instrumented", fig6b_instrumented)
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
