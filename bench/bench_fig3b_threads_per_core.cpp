// Figure 3b: runtime vs. total software threads with all cores in use.
// The paper runs 8 hardware threads with 1..256 software threads per core
// and observes a modest gain (135 s -> 125 s) that then flattens.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "perfmodel/cpu_model.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig3b_measured(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kParallel;
  config.num_threads = threads;
  config.partition = parallel::Partition::kDynamic;
  config.partition_chunk = 64;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["total_threads"] = static_cast<double>(threads);
}

void print_model_series() {
  const perfmodel::MachineSpec machine = perfmodel::MachineSpec::core_i7_2600();
  bench::print_note("perfmodel i7-2600 prediction, 8 cores, varying threads/core:");
  for (int per_core : {1, 2, 8, 32, 128, 256}) {
    const auto prediction =
        perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 8 * per_core);
    bench::print_row("fig3b_model", "threads_per_core", per_core, "seconds",
                     prediction.seconds);
  }
  bench::print_note("paper reference: 135 s at 1 thread/core -> 125 s at 256/core, then flat");
}

}  // namespace

int main(int argc, char** argv) {
  print_model_series();
  if (!bench::full_scale()) {
    bench::print_note("measured series at calibrated sub-scale; ARE_BENCH_FULL=1 for paper scale");
  }
  for (int threads : {8, 16, 64, 256, 2048}) {
    benchmark::RegisterBenchmark("fig3b/measured_total_threads", fig3b_measured)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
