// Runtime SIMD dispatch cost + gathered hash probing throughput.
//
// Two questions from the dispatch PR, answered with wall-clock numbers:
//
//   1. Does the load-time dispatch layer cost anything? The fused kernel is
//      measured twice on the same workload: with the extension pinned to the
//      host's best (what a -march=native build would inline) and with kAuto
//      (the runtime cpuid decision). Acceptance: the auto path is within 2%
//      of pinned — dispatch is a one-time function-pointer choice, not a
//      per-trial branch.
//
//   2. Do gathered probes pay? RobinHood/Cuckoo lookup_many is measured with
//      the scalar prefetch-ring loop and with the widest gathered kernel, in
//      both regimes: a cache-resident table (gathers amortize the compare
//      loop) and a miss-dominated table (every lane waits on DRAM, so the
//      gain shrinks toward the paper's memory-bound ceiling).
//
// Every point lands in BENCH_dispatch.json for the CI perf-trajectory
// artifact.
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/simd_engine.hpp"
#include "elt/cuckoo_table.hpp"
#include "elt/probe_dispatch.hpp"
#include "elt/robin_hood_table.hpp"
#include "elt/synthetic.hpp"
#include "simd/dispatch.hpp"

namespace {

using namespace are;
using bench::Scale;
using Clock = std::chrono::steady_clock;

const Scale kScale = Scale::current();

// Cache-resident regime: regional-peril catalog, tables fit in L2.
const Scale kCacheScale{/*catalog_size=*/20'000, kScale.trials, kScale.events_per_trial,
                        /*elt_entries=*/2'000};

// Miss-dominated regime for the probe micro-bench: enough entries that the
// table (24 B/slot, pow2-rounded past the load factor) far exceeds LLC.
std::size_t miss_entries() { return bench::full_scale() ? 4'000'000 : 1'000'000; }

// --- Part 1: pinned vs runtime-dispatched kernel -----------------------------

double measure_engine_seconds(const core::Portfolio& portfolio,
                              const yet::YearEventTable& yet_table,
                              const core::AnalysisConfig& config) {
  const int reps = bench::full_scale() ? 1 : 3;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    auto ylt = bench::run(portfolio, yet_table, config);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    volatile double sink = ylt.at(0, 0);
    (void)sink;
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

void bench_dispatch_overhead(bench::JsonReport& report) {
  const core::Portfolio portfolio = bench::make_portfolio(kCacheScale, 1, 15);
  const yet::YearEventTable yet_table =
      bench::make_yet(kCacheScale, kCacheScale.trials / 4, kCacheScale.events_per_trial);

  // Pin what kAuto would resolve to on this workload (cache-resident, so no
  // regime narrowing): the host's best runnable extension.
  const core::SimdExtension pinned = core::best_simd_extension();

  core::AnalysisConfig pinned_config{.engine = core::EngineKind::kFused};
  pinned_config.simd_extension = pinned;
  core::AnalysisConfig auto_config{.engine = core::EngineKind::kFused};
  auto_config.simd_extension = core::SimdExtension::kAuto;

  const double pinned_seconds = measure_engine_seconds(portfolio, yet_table, pinned_config);
  const double auto_seconds = measure_engine_seconds(portfolio, yet_table, auto_config);
  const double overhead_pct =
      pinned_seconds > 0.0 ? (auto_seconds / pinned_seconds - 1.0) * 100.0 : 0.0;

  bench::print_row("dispatch_overhead", "pinned_seconds", pinned_seconds, "auto_seconds",
                   auto_seconds);
  std::printf("[note] dispatch overhead: %.2f%% (pinned=%s; acceptance < 2%%)\n", overhead_pct,
              std::string(to_string(pinned)).c_str());
  report.add("dispatch_cache", "fused_pinned_" + std::string(to_string(pinned)), pinned_seconds,
             1.0);
  report.add("dispatch_cache", "fused_auto", auto_seconds,
             auto_seconds > 0.0 ? pinned_seconds / auto_seconds : 0.0,
             "\"dispatch_overhead_pct\": " + std::to_string(overhead_pct));
}

// --- Part 2: scalar vs gathered probe throughput -----------------------------

struct ProbeWorkload {
  std::string name;
  elt::EventLossTable elt;
  std::size_t catalog_size = 0;
  std::vector<elt::EventId> queries;
};

ProbeWorkload make_probe_workload(std::string name, std::size_t catalog_size,
                                  std::size_t entries) {
  elt::SyntheticEltConfig config;
  config.catalog_size = catalog_size;
  config.entries = entries;
  config.elt_id = 7;
  ProbeWorkload workload{std::move(name), elt::make_synthetic_elt(config), catalog_size, {}};
  // Uniform catalog draws: hit rate = entries / catalog, matching what the
  // trial kernel feeds lookup_many. Cheap LCG keeps generation off the clock.
  const std::size_t num_queries = bench::full_scale() ? 1u << 22 : 1u << 19;
  workload.queries.resize(num_queries);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < num_queries; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    workload.queries[i] = static_cast<elt::EventId>((state >> 33) % catalog_size);
  }
  return workload;
}

template <typename Table>
double measure_probe_seconds(const Table& table, const std::vector<elt::EventId>& queries) {
  // lookup_many in trial-sized batches, best of a few passes.
  constexpr std::size_t kBatch = 256;
  std::vector<double> out(kBatch);
  const int reps = 3;
  double best = 0.0;
  volatile double sink = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    for (std::size_t offset = 0; offset < queries.size(); offset += kBatch) {
      const std::size_t count = std::min(kBatch, queries.size() - offset);
      table.lookup_many(queries.data() + offset, count, out.data());
      sink = sink + out[0];
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    if (rep == 0 || seconds < best) best = seconds;
  }
  (void)sink;
  return best;
}

template <typename Table>
void bench_probe_table(const char* table_name, const ProbeWorkload& workload,
                       simd::Extension gathered, bench::JsonReport& report) {
  const Table table(workload.elt, workload.catalog_size);
  const double mlookups = static_cast<double>(workload.queries.size()) / 1e6;

  elt::probe::force_extension(simd::Extension::kScalar);
  const double scalar_seconds = measure_probe_seconds(table, workload.queries);

  elt::probe::force_extension(gathered);
  const bool have_gathered = elt::probe::active().robin_hood != nullptr;
  const double gathered_seconds =
      have_gathered ? measure_probe_seconds(table, workload.queries) : 0.0;
  elt::probe::force_extension(std::nullopt);

  const std::string workload_label = workload.name + "_" + table_name;
  report.add(workload_label, "probe_scalar", scalar_seconds, 1.0,
             "\"mlookups_per_sec\": " + std::to_string(mlookups / scalar_seconds));
  bench::print_row(("probe_" + workload_label).c_str(), "scalar_mlookups_per_sec",
                   mlookups / scalar_seconds, "seconds", scalar_seconds);
  if (!have_gathered) {
    bench::print_note("no gathered probe kernel compiled+runnable on this host; scalar only");
    return;
  }
  report.add(workload_label, "probe_" + std::string(simd::name_of(gathered)), gathered_seconds,
             scalar_seconds / gathered_seconds,
             "\"mlookups_per_sec\": " + std::to_string(mlookups / gathered_seconds));
  bench::print_row(("probe_" + workload_label).c_str(),
                   (std::string(simd::name_of(gathered)) + "_mlookups_per_sec").c_str(),
                   mlookups / gathered_seconds, "seconds", gathered_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(&argc, argv, "BENCH_dispatch.json");
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  std::printf("[note] runtime dispatch: auto runs %s (%s)\n",
              std::string(simd::name_of(simd::best_extension())).c_str(),
              simd::best_extension_reason().c_str());

  bench::JsonReport report;
  bench_dispatch_overhead(report);

  // Widest gathered kernel the host can actually run (avx512 > avx2); the
  // scalar baseline is the prefetch-ring loop every other extension uses.
  simd::Extension gathered = simd::Extension::kScalar;
  for (const simd::Extension candidate : {simd::Extension::kAvx512, simd::Extension::kAvx2}) {
    if (simd::mask_has(simd::runnable_extensions(), candidate)) {
      gathered = candidate;
      break;
    }
  }

  const ProbeWorkload cache_workload =
      make_probe_workload("cache", kCacheScale.catalog_size, kCacheScale.elt_entries);
  const ProbeWorkload miss_workload =
      make_probe_workload("memory", /*catalog_size=*/4 * miss_entries(), miss_entries());

  bench_probe_table<elt::RobinHoodTable>("robin_hood", cache_workload, gathered, report);
  bench_probe_table<elt::CuckooTable>("cuckoo", cache_workload, gathered, report);
  bench_probe_table<elt::RobinHoodTable>("robin_hood", miss_workload, gathered, report);
  bench_probe_table<elt::CuckooTable>("cuckoo", miss_workload, gathered, report);

  if (report.write(json_path)) {
    std::printf("[note] wrote %zu records to %s\n", report.size(), json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
