// Sink-capable engines: materialized vs sharded execution per engine. The
// kernel refactor made every engine sink-capable, so this bench tracks two
// things run over run: (1) the per-engine cost of emitting through a
// YltSink instead of writing an owned table (unlimited budget = pure
// sharding overhead), and (2) the cost under a tight budget that forces
// spill-and-restore cycles. Records land in BENCH_sinks.json (--json PATH),
// uploaded by CI alongside BENCH_fused.json / BENCH_sharded.json.
//
// Like bench_sharded_ylt the workload is lookup-light: the axis under test
// is output placement, not lookup throughput.
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "core/engine_registry.hpp"
#include "shard/sharded_run.hpp"

namespace {

using namespace are;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNumLayers = 2;
constexpr double kEventsPerTrial = 8.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string store_extra(const shard::ShardStoreStats& stats) {
  return "\"spills\": " + std::to_string(stats.spills) +
         ", \"faults\": " + std::to_string(stats.faults) +
         ", \"peak_resident_bytes\": " + std::to_string(stats.peak_resident_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(&argc, argv, "BENCH_sinks.json");
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }

  const std::uint64_t trials = bench::full_scale() ? 2'000'000 : 100'000;
  const bench::Scale scale{/*catalog_size=*/20'000, trials, kEventsPerTrial,
                           /*elt_entries=*/2'000};
  const core::Portfolio portfolio = bench::make_portfolio(scale, kNumLayers, 2);
  const auto yet_table = bench::make_yet(scale, trials, kEventsPerTrial);
  const std::string workload = "trials_" + std::to_string(trials);
  // A quarter of the YLT resident: every run under this budget must spill.
  const std::size_t budget_bytes =
      static_cast<std::size_t>(trials) * kNumLayers * sizeof(double) / 4;
  const std::uint64_t shard_trials = trials / 16;

  // Sequential materialized reference for the speedup column.
  auto start = Clock::now();
  auto seq_ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
  const double seq_seconds = seconds_since(start);
  volatile double guard = seq_ylt.at(0, 0);
  (void)guard;

  bench::JsonReport report;
  for (const auto& engine : core::EngineRegistry::global().descriptors()) {
    if (!engine.supports_sharded_output() || !engine.available_in_this_build) continue;
    // The windowed engine without a window is seq; skip the duplicate row.
    if (engine.kind == core::EngineKind::kWindowed) continue;

    core::AnalysisConfig config;
    config.engine = engine.kind;
    config.engine_name = engine.name;

    start = Clock::now();
    auto materialized = core::run({portfolio, yet_table, config});
    const double materialized_seconds = seconds_since(start);
    guard = materialized.at(0, 0);
    report.add(workload, engine.name + "_materialized", materialized_seconds,
               materialized_seconds > 0.0 ? seq_seconds / materialized_seconds : 0.0);

    // Sharded, unlimited budget: pure sink/emit overhead.
    config.output = core::OutputMode::kSharded;
    config.sharding.shard_trials = shard_trials;
    start = Clock::now();
    {
      auto sharded = shard::run_sharded({portfolio, yet_table, config});
      const double sharded_seconds = seconds_since(start);
      report.add(workload, engine.name + "_sharded_unlimited", sharded_seconds,
                 sharded_seconds > 0.0 ? seq_seconds / sharded_seconds : 0.0,
                 store_extra(sharded.stats()));
    }

    // Sharded under the forced-spill budget.
    config.sharding.memory_budget_bytes = budget_bytes;
    start = Clock::now();
    auto sharded = shard::run_sharded({portfolio, yet_table, config});
    const double sharded_seconds = seconds_since(start);
    const shard::ShardStoreStats stats = sharded.stats();
    report.add(workload, engine.name + "_sharded_budget", sharded_seconds,
               sharded_seconds > 0.0 ? seq_seconds / sharded_seconds : 0.0,
               store_extra(stats));
    bench::print_row("sink_engines", "engine", 0.0,
                     (engine.name + "_sharded_budget_seconds").c_str(), sharded_seconds);
    if (stats.spills == 0) {
      std::fprintf(stderr, "bench_sink_engines: engine '%s' never spilled under the budget\n",
                   engine.name.c_str());
      return 1;
    }
  }

  if (report.write(json_path)) {
    std::printf("[note] wrote %zu records to %s\n", report.size(), json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_sink_engines: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
