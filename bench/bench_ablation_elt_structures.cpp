// Ablation for the paper's §III-B design argument: ELT representation.
// The paper selects the direct access table over sorted/binary-search,
// classic hashing and cuckoo hashing because aggregate analysis is
// memory-access bound and direct access needs exactly one access per
// lookup. This bench measures all four, both as raw random-lookup
// microbenchmarks and as whole-engine runs, and reports their memory cost.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rng/stream.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

elt::LookupKind kind_of(int index) {
  switch (index) {
    case 0: return elt::LookupKind::kDirectAccess;
    case 1: return elt::LookupKind::kSortedVector;
    case 2: return elt::LookupKind::kRobinHood;
    case 3: return elt::LookupKind::kCuckoo;
    default: return elt::LookupKind::kPagedDirect;
  }
}

// Raw lookup microbenchmark: uniformly random event ids against one ELT.
void ablation_raw_lookup(benchmark::State& state) {
  const elt::LookupKind kind = kind_of(static_cast<int>(state.range(0)));
  elt::SyntheticEltConfig config;
  config.catalog_size = kScale.catalog_size;
  config.entries = kScale.elt_entries;
  const auto table = elt::make_synthetic_elt(config);
  const auto lookup = elt::make_lookup(kind, table, kScale.catalog_size);

  // Pre-generate the probe sequence so RNG cost stays out of the loop.
  rng::Stream stream(7, 42, 0);
  std::vector<elt::EventId> probes(1 << 16);
  for (auto& probe : probes) {
    probe = static_cast<elt::EventId>(stream.uniform_below(kScale.catalog_size));
  }

  double sink = 0.0;
  for (auto _ : state) {
    for (const auto probe : probes) sink += lookup->lookup(probe);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(probes.size()));
  state.counters["memory_mb"] =
      static_cast<double>(lookup->memory_bytes()) / (1024.0 * 1024.0);
  state.SetLabel(std::string(to_string(kind)));
}

// Whole-engine runs with each representation backing all 15 ELTs.
void ablation_engine(benchmark::State& state) {
  const elt::LookupKind kind = kind_of(static_cast<int>(state.range(0)));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
  const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15, kind);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
  state.SetLabel(std::string(to_string(kind)));
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "ELT representation ablation (paper SIII-B): direct access vs sorted "
      "binary search vs Robin Hood hashing vs cuckoo hashing.");
  bench::print_note(
      "expected: direct access fastest per lookup but with universe-sized "
      "memory; sorted slowest (O(log n) dependent accesses); cuckoo close "
      "to direct in accesses but with hashing arithmetic overhead.");
  for (int kind = 0; kind < 5; ++kind) {
    benchmark::RegisterBenchmark("ablation/raw_lookup", ablation_raw_lookup)->Arg(kind);
    benchmark::RegisterBenchmark("ablation/engine", ablation_engine)
        ->Arg(kind)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
