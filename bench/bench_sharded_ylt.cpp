// Sharded out-of-core YLT: sweeps the trial count past the point where the
// full trials x layers table exceeds the shard store's memory budget, so
// the top points only complete because cold shards spill to disk and fault
// back. Per point it measures the materialized engines against sharded
// execution (unlimited budget = pure sharding overhead; tight budget =
// spill/fault cost) and a shard-wise EP reduction, recording wall time and
// the spill/fault counters to BENCH_sharded.json (--json PATH) — the CI
// artifact that tracks the out-of-core trajectory run over run.
//
// The workload is deliberately lookup-light (few events/trial, small
// ELTs): the axis under test is YLT footprint, not lookup throughput.
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "metrics/ep_curve.hpp"
#include "metrics/sharded_reduce.hpp"
#include "shard/sharded_run.hpp"

namespace {

using namespace are;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kNumLayers = 2;
constexpr double kEventsPerTrial = 8.0;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string store_extra(const shard::ShardStoreStats& stats, std::size_t ylt_bytes,
                        std::size_t budget_bytes) {
  return "\"spills\": " + std::to_string(stats.spills) +
         ", \"faults\": " + std::to_string(stats.faults) +
         ", \"peak_resident_bytes\": " + std::to_string(stats.peak_resident_bytes) +
         ", \"ylt_bytes\": " + std::to_string(ylt_bytes) +
         ", \"budget_bytes\": " + std::to_string(budget_bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(&argc, argv, "BENCH_sharded.json");
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }

  // Small regional catalog so every engine is compute-light; the sweep
  // multiplies trials until the YLT dwarfs the budget.
  const bench::Scale scale{/*catalog_size=*/20'000, /*trials=*/0, kEventsPerTrial,
                           /*elt_entries=*/2'000};
  const core::Portfolio portfolio = bench::make_portfolio(scale, kNumLayers, 2);

  const std::uint64_t base_trials = bench::full_scale() ? 1'000'000 : 50'000;
  const std::uint64_t trial_sweep[] = {base_trials, base_trials * 4, base_trials * 16};
  // Budget: the smallest sweep point fits comfortably; the largest exceeds
  // it ~8x, so its analysis *must* spill to complete.
  const std::size_t budget_bytes =
      static_cast<std::size_t>(base_trials * 2) * kNumLayers * sizeof(double);
  const std::uint64_t shard_trials = base_trials / 4;

  bench::JsonReport report;
  for (const std::uint64_t trials : trial_sweep) {
    const auto yet_table = bench::make_yet(scale, trials, kEventsPerTrial);
    const std::string workload = "trials_" + std::to_string(trials);
    const std::size_t ylt_bytes =
        static_cast<std::size_t>(trials) * kNumLayers * sizeof(double);

    // Materialized references.
    auto start = Clock::now();
    auto seq_ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    const double seq_seconds = seconds_since(start);
    volatile double guard = seq_ylt.at(0, 0);
    (void)guard;
    report.add(workload, "seq_materialized", seq_seconds, 1.0);
    bench::print_row("sharded_ylt", "trials", static_cast<double>(trials),
                     "seq_materialized_seconds", seq_seconds);

    start = Clock::now();
    auto fused_ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kFused});
    const double fused_seconds = seconds_since(start);
    guard = fused_ylt.at(0, 0);
    report.add(workload, "fused_materialized", fused_seconds,
               fused_seconds > 0.0 ? seq_seconds / fused_seconds : 0.0);

    // Sharded, unlimited budget: pure sharding overhead, nothing spills.
    core::AnalysisConfig config;
    config.engine = core::EngineKind::kFused;
    config.output = core::OutputMode::kSharded;
    config.sharding.shard_trials = shard_trials;
    start = Clock::now();
    {
      auto sharded = shard::run_sharded({portfolio, yet_table, config});
      const double sharded_seconds = seconds_since(start);
      report.add(workload, "fused_sharded_unlimited", sharded_seconds,
                 sharded_seconds > 0.0 ? seq_seconds / sharded_seconds : 0.0,
                 store_extra(sharded.stats(), ylt_bytes, 0));
    }

    // Sharded under the tight budget: the top sweep points exceed it and
    // only complete by spilling; the EP reduction then streams the shards
    // back (more faults) without ever materializing the table.
    config.sharding.memory_budget_bytes = budget_bytes;
    start = Clock::now();
    auto sharded = shard::run_sharded({portfolio, yet_table, config});
    const double sharded_seconds = seconds_since(start);
    report.add(workload, "fused_sharded_budget", sharded_seconds,
               sharded_seconds > 0.0 ? seq_seconds / sharded_seconds : 0.0,
               store_extra(sharded.stats(), ylt_bytes, budget_bytes));
    bench::print_row("sharded_ylt", "trials", static_cast<double>(trials),
                     "fused_sharded_budget_seconds", sharded_seconds);

    start = Clock::now();
    const metrics::EpCurve curve = metrics::ep_curve_sharded(sharded, 0);
    const double reduce_seconds = seconds_since(start);
    guard = curve.expected_loss();
    report.add(workload, "ep_reduce_sharded", reduce_seconds, 0.0,
               store_extra(sharded.stats(), ylt_bytes, budget_bytes));

    const shard::ShardStoreStats stats = sharded.stats();
    std::printf("[note] %s: ylt %.1f MB vs budget %.1f MB -> %llu spills, %llu faults, "
                "peak resident %.1f MB\n",
                workload.c_str(), static_cast<double>(ylt_bytes) / 1e6,
                static_cast<double>(budget_bytes) / 1e6,
                static_cast<unsigned long long>(stats.spills),
                static_cast<unsigned long long>(stats.faults),
                static_cast<double>(stats.peak_resident_bytes) / 1e6);
  }

  // Acceptance guard: the largest sweep point's YLT must not have fit the
  // budget — if it did, the bench no longer demonstrates out-of-core runs.
  const std::size_t largest_ylt =
      static_cast<std::size_t>(trial_sweep[2]) * kNumLayers * sizeof(double);
  if (largest_ylt <= budget_bytes) {
    std::fprintf(stderr, "bench_sharded_ylt: sweep never exceeded the memory budget\n");
    return 1;
  }

  if (report.write(json_path)) {
    std::printf("[note] wrote %zu records to %s\n", report.size(), json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_sharded_ylt: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
