// Figure 2b: sequential single-core runtime vs. number of trials (paper:
// 200K..1M trials, 1 layer, 15 ELTs, 1000 events/trial; linear scaling).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig2b(benchmark::State& state) {
  const auto trials = static_cast<std::uint64_t>(state.range(0));
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);
  const yet::YearEventTable yet_table =
      bench::make_yet(kScale, trials, kScale.events_per_trial);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["trials"] = static_cast<double>(trials);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 2b reproduction: runtime vs number of trials (20%..100% of base), "
      "1 layer x 15 ELTs. Paper reports linear scaling.");
  if (!bench::full_scale()) {
    bench::print_note("running at calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  for (int fraction = 1; fraction <= 5; ++fraction) {
    const auto trials = static_cast<long>(kScale.trials * fraction / 5);
    benchmark::RegisterBenchmark("fig2b/trials", fig2b)
        ->Arg(trials)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
