// Figure 3a: multi-core speedup vs. core count. The paper measured
// 1.5x / 2.2x / 2.6x at 2 / 4 / 8 cores on an i7-2600 and attributes the
// saturation to shared memory bandwidth.
//
// This binary reports two things:
//   1. the perfmodel roofline prediction parameterized like the paper's
//      machine (regenerates the published curve), and
//   2. measured wall-clock on *this* host's thread pool (on a single-core
//      container the measured curve is flat — see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "perfmodel/cpu_model.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig3a_measured(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kParallel;
  config.num_threads = threads;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["threads"] = static_cast<double>(threads);
}

void print_model_series() {
  const perfmodel::MachineSpec machine = perfmodel::MachineSpec::core_i7_2600();
  const double t1 =
      perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 1).seconds;
  bench::print_note("perfmodel i7-2600 prediction, paper workload (1M x 1000 x 15):");
  for (int threads : {1, 2, 4, 8}) {
    const auto prediction =
        perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, threads);
    bench::print_row("fig3a_model", "cores", threads, "seconds", prediction.seconds);
    bench::print_row("fig3a_model", "cores", threads, "speedup",
                     t1 / prediction.seconds);
  }
  bench::print_note("paper reference: speedup 1.5x @2, 2.2x @4, 2.6x @8");
}

}  // namespace

int main(int argc, char** argv) {
  print_model_series();
  if (!bench::full_scale()) {
    bench::print_note("measured series at calibrated sub-scale; ARE_BENCH_FULL=1 for paper scale");
  }
  for (int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("fig3a/measured_threads", fig3a_measured)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
