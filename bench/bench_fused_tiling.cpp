// Fused trial-tiled engine: tile size x scheduling policy, both cache
// regimes, plus the cross-engine comparison the acceptance target is
// stated against (fused >= 1.5x over the parallel engine on the
// cache-resident fig6a workload at max threads).
//
// Two workload shapes per regime:
//   * fig6a        — 1 layer x 15 ELTs, the paper's headline shape: the
//                    gains here come from batch lookups + vectorized terms
//                    + cost-aware dynamic scheduling.
//   * multilayer   — 4 layers x 8 ELTs: adds the loop-nest fusion gain
//                    (the YET streams once per analysis, not once per
//                    layer).
//
// Unlike the per-figure benches this binary times by hand (best of N
// steady_clock reps) instead of through google benchmark: every measured
// point also lands in a JSON report (--json PATH, default
// BENCH_fused.json) so CI archives the perf trajectory from this PR on.
#include <algorithm>
#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "core/engine_registry.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();
constexpr std::size_t kTiles[] = {16, 64, 256, 1024};

// Cache-resident variant: same shape over a regional-peril catalog whose
// direct tables fit in L2 (see bench_simd_engine for the regime rationale).
const Scale kCacheScale{/*catalog_size=*/20'000, kScale.trials, kScale.events_per_trial,
                        /*elt_entries=*/2'000};

struct Workload {
  std::string name;
  core::Portfolio portfolio;
  yet::YearEventTable yet_table;
  double sequential_seconds = 0.0;
};

double measure_seconds(const Workload& workload, const core::AnalysisConfig& config) {
  using Clock = std::chrono::steady_clock;
  const int reps = bench::full_scale() ? 1 : 3;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = Clock::now();
    auto ylt = bench::run(workload.portfolio, workload.yet_table, config);
    const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
    // Touch the result so the run cannot be elided.
    volatile double sink = ylt.at(0, 0);
    (void)sink;
    if (rep == 0 || seconds < best) best = seconds;
  }
  return best;
}

/// Measures one (workload, config) point, prints the series row, records
/// it in the JSON report, and returns the wall seconds.
double measure_point(Workload& workload, const std::string& engine_label,
                     const core::AnalysisConfig& config, bench::JsonReport& report) {
  const double seconds = measure_seconds(workload, config);
  const double speedup =
      seconds > 0.0 ? workload.sequential_seconds / seconds : 0.0;
  bench::print_row(("fused_" + workload.name).c_str(), "speedup", speedup,
                   (engine_label + "_seconds").c_str(), seconds);
  report.add(workload.name, engine_label, seconds, speedup);
  return seconds;
}

const char* partition_name(parallel::Partition partition) {
  switch (partition) {
    case parallel::Partition::kStatic: return "static";
    case parallel::Partition::kDynamic: return "dynamic";
    case parallel::Partition::kGuided: return "guided";
  }
  return "unknown";
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(&argc, argv, "BENCH_fused.json");
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }

  Workload workloads[] = {
      {"fig6a_cache", bench::make_portfolio(kCacheScale, 1, 15),
       bench::make_yet(kCacheScale, kCacheScale.trials / 4, kCacheScale.events_per_trial)},
      {"fig6a_memory", bench::make_portfolio(kScale, 1, 15),
       bench::make_yet(kScale, kScale.trials / 4, kScale.events_per_trial)},
      {"multilayer_cache", bench::make_portfolio(kCacheScale, 4, 8),
       bench::make_yet(kCacheScale, kCacheScale.trials / 4, kCacheScale.events_per_trial)},
      {"multilayer_memory", bench::make_portfolio(kScale, 4, 8),
       bench::make_yet(kScale, kScale.trials / 4, kScale.events_per_trial)},
  };

  bench::JsonReport report;
  double cache_fig6a_parallel = 0.0;
  double cache_fig6a_fused_best = 0.0;

  for (Workload& workload : workloads) {
    workload.sequential_seconds =
        measure_seconds(workload, {.engine = core::EngineKind::kSequential});
    report.add(workload.name, "seq", workload.sequential_seconds, 1.0);
    bench::print_row(("fused_" + workload.name).c_str(), "speedup", 1.0, "seq_seconds",
                     workload.sequential_seconds);

    // Reference engines at max threads (0 = hardware concurrency).
    const double parallel_seconds =
        measure_point(workload, "parallel", {.engine = core::EngineKind::kParallel}, report);
    if (workload.name == "fig6a_cache") cache_fig6a_parallel = parallel_seconds;
    measure_point(workload, "simd",
                  {.engine = core::EngineKind::kSimd, .num_threads = 0}, report);

    // The tentpole sweep: tile size x scheduling policy at max threads.
    for (const std::size_t tile : kTiles) {
      for (const auto partition :
           {parallel::Partition::kStatic, parallel::Partition::kDynamic,
            parallel::Partition::kGuided}) {
        core::AnalysisConfig config;
        config.engine = core::EngineKind::kFused;
        config.partition = partition;
        config.tile_trials = tile;
        const std::string label =
            "fused_t" + std::to_string(tile) + "_" + partition_name(partition);
        const double seconds = measure_point(workload, label, config, report);
        if (workload.name == "fig6a_cache" &&
            (cache_fig6a_fused_best == 0.0 || seconds < cache_fig6a_fused_best)) {
          cache_fig6a_fused_best = seconds;
        }
      }
    }
  }

  if (cache_fig6a_parallel > 0.0 && cache_fig6a_fused_best > 0.0) {
    std::printf("[note] acceptance: fused best %.1fx over parallel on fig6a_cache "
                "(target >= 1.5x)\n",
                cache_fig6a_parallel / cache_fig6a_fused_best);
  }

  // Telemetry overhead A/B on the cache-resident fig6a shape (the regime
  // where per-block bookkeeping would show first): the default fused
  // config, counters+spans off vs. on. Acceptance: <= 2% overhead.
  {
    Workload& cache_workload = workloads[0];
    core::AnalysisConfig fused_config;
    fused_config.engine = core::EngineKind::kFused;
    const double off_seconds = measure_seconds(cache_workload, fused_config);
    fused_config.telemetry.counters = true;
    fused_config.telemetry.trace = true;
    const double on_seconds = measure_seconds(cache_workload, fused_config);
    obs::set_enabled(true);  // stamp the A/B's snapshot into the "on" record
    report.add(cache_workload.name, "fused_telemetry_off", off_seconds,
               off_seconds > 0.0 ? cache_workload.sequential_seconds / off_seconds : 0.0);
    report.add(cache_workload.name, "fused_telemetry_on", on_seconds,
               on_seconds > 0.0 ? cache_workload.sequential_seconds / on_seconds : 0.0,
               bench::telemetry_extra());
    obs::set_enabled(false);
    std::printf("[note] telemetry overhead on fig6a_cache (fused): off %.4fs, on %.4fs "
                "(%+.1f%%; target <= 2%%)\n",
                off_seconds, on_seconds,
                off_seconds > 0.0 ? 100.0 * (on_seconds - off_seconds) / off_seconds : 0.0);
  }
  if (report.write(json_path)) {
    std::printf("[note] wrote %zu records to %s\n", report.size(), json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_fused_tiling: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
