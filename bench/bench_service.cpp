// Resident-service quote latency: measures the three paths a quote can take
// through the AnalysisService — cold (full kernel run + ground-up capture),
// cache hit (fingerprint match, no kernel at all), and delta re-pricing
// (terms-only change replayed over the cached ground-up losses, skipping the
// event fetch and every ELT lookup) — under 1, 4, and hardware_concurrency
// concurrent submitters sharing one session (one YET, one thread pool, one
// broker). Writes p50/p99 per (submitters, path) to BENCH_service.json
// (--json PATH), the CI artifact that tracks interactive-quote latency.
//
// The workload is deliberately lookup-heavy (many ELTs per layer, few
// trials): the paper attributes ~78% of runtime to ELT lookups (Fig 6b), so
// the delta path — which performs none — must land well under 0.5x cold.
// That ratio is enforced as this bench's acceptance guard.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/analysis_service.hpp"

namespace {

using namespace are;
using Clock = std::chrono::steady_clock;

struct Percentiles {
  double p50 = 0.0;
  double p99 = 0.0;
};

Percentiles percentiles(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t index = std::min(
        samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
    return samples[index];
  };
  return {at(0.50), at(0.99)};
}

std::string extra_json(const Percentiles& p, std::size_t requests, double vs_cold_p50) {
  std::string extra = "\"p99_seconds\": " + std::to_string(p.p99) +
                      ", \"requests\": " + std::to_string(requests);
  if (vs_cold_p50 > 0.0) {
    extra += ", \"p50_vs_cold_p50\": " + std::to_string(p.p50 / vs_cold_p50);
  }
  return extra;
}

/// S submitter threads each issue `reps` quotes built by `make_request(thread,
/// iteration)` and record per-request wall time; returns the merged samples.
/// Every response's source must match `expected` — a quote that took the
/// wrong path (e.g. a "delta" that ran cold) would silently skew the series.
std::vector<double> hammer(service::AnalysisService& analysis_service, std::size_t submitters,
                           std::size_t reps, service::QuoteSource expected,
                           const std::function<service::QuoteRequest(std::size_t, std::size_t)>&
                               make_request) {
  std::vector<std::vector<double>> per_thread(submitters);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (std::size_t t = 0; t < submitters; ++t) {
    threads.emplace_back([&, t] {
      per_thread[t].reserve(reps);
      for (std::size_t i = 0; i < reps; ++i) {
        const auto start = Clock::now();
        const service::QuoteResponse response =
            analysis_service.quote(make_request(t, i));
        per_thread[t].push_back(
            std::chrono::duration<double>(Clock::now() - start).count());
        if (response.source != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  if (mismatches.load() != 0) {
    std::fprintf(stderr, "bench_service: %d responses took an unexpected path\n",
                 mismatches.load());
    std::exit(1);
  }
  std::vector<double> merged;
  for (const auto& samples : per_thread) {
    merged.insert(merged.end(), samples.begin(), samples.end());
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = bench::consume_json_flag(&argc, argv, "BENCH_service.json");
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }

  // Lookup-heavy book: 2 layers x 6 ELTs means every event costs 12 table
  // gathers on the cold path and zero on the delta path.
  const bench::Scale scale = bench::full_scale()
                                 ? bench::Scale{2'000'000, 100'000, 1000.0, 20'000}
                                 : bench::Scale{100'000, 2'000, 250.0, 4'000};
  const core::Portfolio portfolio = bench::make_portfolio(scale, 2, 6);
  const auto yet_table = bench::make_yet(scale, scale.trials, scale.events_per_trial);

  service::ServiceConfig config;
  config.default_engine = "fused";
  service::AnalysisService analysis_service(yet_table, config);
  analysis_service.register_portfolio("book", portfolio);

  // Prime once: the first quote runs cold, captures the ground-up losses,
  // and seeds the result cache — after this, identical requests are cache
  // hits and terms-tweaked requests are deltas.
  const service::QuoteResponse primed = analysis_service.quote({.portfolio_id = "book"});
  if (primed.source != service::QuoteSource::kCold) {
    std::fprintf(stderr, "bench_service: priming quote was not cold\n");
    return 1;
  }

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> submitter_counts = {1, 4};
  if (std::find(submitter_counts.begin(), submitter_counts.end(), hw) ==
      submitter_counts.end()) {
    submitter_counts.push_back(hw);
  }

  const std::size_t cold_reps = bench::full_scale() ? 5 : 9;
  const std::size_t cached_reps = 64;
  const std::size_t delta_reps = bench::full_scale() ? 9 : 17;

  bench::JsonReport report;
  bool delta_guard_ok = true;
  for (const std::size_t submitters : submitter_counts) {
    const std::string workload = "submitters_" + std::to_string(submitters);

    // Cold: bypass both the cache and the ground-up replay so every request
    // pays the full fetch + lookup + financial-terms pipeline.
    const Percentiles cold = percentiles(hammer(
        analysis_service, submitters, cold_reps, service::QuoteSource::kCold,
        [](std::size_t, std::size_t) {
          return service::QuoteRequest{
              .portfolio_id = "book", .use_cache = false, .use_delta = false};
        }));
    report.add(workload, "cold", cold.p50, 1.0,
               extra_json(cold, submitters * cold_reps, 0.0));
    bench::print_row("service", "submitters", static_cast<double>(submitters),
                     "cold_p50_ms", 1e3 * cold.p50);

    // Cache hit: the primed request repeated verbatim.
    const Percentiles cached = percentiles(hammer(
        analysis_service, submitters, cached_reps, service::QuoteSource::kCached,
        [](std::size_t, std::size_t) {
          return service::QuoteRequest{.portfolio_id = "book"};
        }));
    report.add(workload, "cache_hit", cached.p50,
               cached.p50 > 0.0 ? cold.p50 / cached.p50 : 0.0,
               extra_json(cached, submitters * cached_reps, cold.p50));

    // Delta: every request tweaks the occurrence retention, so fingerprints
    // never repeat (no cache hits) and the kernel replays the captured
    // ground-up losses instead of fetching events and probing ELTs.
    const Percentiles delta = percentiles(hammer(
        analysis_service, submitters, delta_reps, service::QuoteSource::kDelta,
        [&](std::size_t thread, std::size_t iteration) {
          financial::LayerTerms terms = portfolio.layers[0].terms;
          terms.occurrence_retention +=
              1e3 * static_cast<double>(thread * delta_reps + iteration + 1);
          service::QuoteRequest request{.portfolio_id = "book", .use_cache = false};
          request.overrides.push_back({portfolio.layers[0].id, terms});
          return request;
        }));
    report.add(workload, "delta", delta.p50,
               delta.p50 > 0.0 ? cold.p50 / delta.p50 : 0.0,
               extra_json(delta, submitters * delta_reps, cold.p50));
    bench::print_row("service", "submitters", static_cast<double>(submitters),
                     "delta_p50_ms", 1e3 * delta.p50);

    std::printf("[note] %zu submitters: cold p50 %.2f ms / cache hit p50 %.4f ms / "
                "delta p50 %.2f ms (%.2fx cold)\n",
                submitters, 1e3 * cold.p50, 1e3 * cached.p50, 1e3 * delta.p50,
                delta.p50 / cold.p50);
    if (delta.p50 >= 0.5 * cold.p50) delta_guard_ok = false;
  }

  // Acceptance guard: delta re-pricing exists to make interactive re-quotes
  // cheap; if it is not at least 2x faster than cold, the path regressed.
  if (!delta_guard_ok) {
    std::fprintf(stderr, "bench_service: delta p50 not under 0.5x cold p50\n");
    return 1;
  }

  if (report.write(json_path)) {
    std::printf("[note] wrote %zu records to %s\n", report.size(), json_path.c_str());
  } else {
    std::fprintf(stderr, "bench_service: cannot write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}
