// Figure 2c: sequential single-core runtime vs. number of layers (paper:
// 1..5 layers, 15 ELTs/layer, 1M trials, 1000 events/trial; linear).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig2c(benchmark::State& state) {
  const auto layers = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  const core::Portfolio portfolio = bench::make_portfolio(kScale, layers, 15);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["layers"] = static_cast<double>(layers);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 2c reproduction: runtime vs number of layers (1..5), 15 ELTs "
      "per layer. Paper reports linear scaling.");
  if (!bench::full_scale()) {
    bench::print_note("running at calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  for (int layers = 1; layers <= 5; ++layers) {
    benchmark::RegisterBenchmark("fig2c/layers", fig2c)
        ->Arg(layers)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
