// Figure 5a: optimised (chunked) GPU kernel runtime vs. chunk size.
// Paper: significant improvement by chunk 4 (22.72 s), flat up to 12,
// rapid deterioration beyond as shared memory overflows to global.
//
// Two series: the simgpu device-model prediction at paper scale, and the
// *measured* chunked CPU engine at bench scale (same code path, real
// buffers) to confirm the algorithmic equivalence of chunking.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();
const simgpu::DeviceSpec kDevice = simgpu::DeviceSpec::tesla_c2075();

simgpu::WorkloadShape paper_workload() {
  simgpu::WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;
  return shape;
}

void fig5a_measured_cpu(benchmark::State& state) {
  const auto chunk = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 4, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kChunked;
  config.chunk_size = chunk;
  config.num_threads = 1;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["chunk"] = static_cast<double>(chunk);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 5a reproduction: chunked kernel vs chunk size at 64 threads/"
      "block (so chunk 12 exactly fills the SM's 48KB shared memory).");
  for (int chunk : {1, 2, 4, 6, 8, 10, 12, 13, 14, 16, 20, 24}) {
    const auto estimate = simgpu::estimate_chunked_kernel(kDevice, paper_workload(), 64, chunk);
    bench::print_row("fig5a_model", "chunk", chunk, "seconds", estimate.seconds);
  }
  bench::print_note(
      "paper reference: 22.72 s plateau from chunk 4 to 12 (1.7x over the "
      "38.47 s basic kernel), rapid deterioration past 12");

  if (!bench::full_scale()) {
    bench::print_note("measured CPU series at calibrated sub-scale");
  }
  for (int chunk : {1, 2, 4, 8, 12, 16, 32, 128}) {
    benchmark::RegisterBenchmark("fig5a/measured_cpu_chunk", fig5a_measured_cpu)
        ->Arg(chunk)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
