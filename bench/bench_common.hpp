#pragma once

// Shared harness for the per-figure benchmark binaries.
//
// Scale: the paper's headline workload is 1M trials x 1000 events x 15 ELTs
// (15 billion lookups), minutes of wall time per point on one core. Every
// binary therefore defaults to a calibrated sub-scale that preserves the
// reported *shapes* (the algorithm is linear in every size parameter — see
// bench_fig2*), and honours ARE_BENCH_FULL=1 to run paper scale.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/analysis.hpp"
#include "elt/synthetic.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "yet/generator.hpp"

namespace are::bench {

/// Every bench dispatches through the unified front door (core::run +
/// EngineRegistry); this helper trims the AnalysisRequest boilerplate so a
/// measured series is one line per config.
inline core::YearLossTable run(const core::Portfolio& portfolio,
                               const yet::YearEventTable& yet_table,
                               core::AnalysisConfig config = {}) {
  return core::run({portfolio, yet_table, std::move(config)});
}

inline bool full_scale() {
  const char* env = std::getenv("ARE_BENCH_FULL");
  return env != nullptr && std::strcmp(env, "0") != 0;
}

/// Workload sizes for the measured benchmarks.
struct Scale {
  std::size_t catalog_size;
  std::uint64_t trials;
  double events_per_trial;
  std::size_t elt_entries;

  static Scale current() {
    if (full_scale()) {
      // The paper's configuration: 2M-event catalog, 1M trials, 1000
      // events/trial, ELTs of 20K losses.
      return {2'000'000, 1'000'000, 1000.0, 20'000};
    }
    // Calibrated sub-scale: one engine pass in the hundreds of
    // milliseconds; all shape relationships preserved.
    return {200'000, 10'000, 200.0, 4'000};
  }
};

inline core::Portfolio make_portfolio(const Scale& scale, std::size_t num_layers,
                                      std::size_t elts_per_layer,
                                      elt::LookupKind kind = elt::LookupKind::kDirectAccess) {
  core::Portfolio portfolio;
  for (std::size_t l = 0; l < num_layers; ++l) {
    core::Layer layer;
    layer.id = static_cast<std::uint32_t>(l + 1);
    layer.terms.occurrence_retention = 500e3;
    layer.terms.occurrence_limit = 10e6;
    layer.terms.aggregate_retention = 1e6;
    layer.terms.aggregate_limit = 200e6;
    for (std::size_t e = 0; e < elts_per_layer; ++e) {
      elt::SyntheticEltConfig config;
      config.catalog_size = scale.catalog_size;
      config.entries = scale.elt_entries;
      config.elt_id = l * 1000 + e;
      core::LayerElt layer_elt;
      layer_elt.lookup =
          elt::make_lookup(kind, elt::make_synthetic_elt(config), scale.catalog_size);
      layer_elt.terms.occurrence_retention = 50e3;
      layer_elt.terms.share = 0.9;
      layer.elts.push_back(std::move(layer_elt));
    }
    portfolio.layers.push_back(std::move(layer));
  }
  return portfolio;
}

inline yet::YearEventTable make_yet(const Scale& scale, std::uint64_t trials,
                                    double events_per_trial) {
  yet::YetConfig config;
  config.num_trials = trials;
  config.events_per_trial = events_per_trial;
  config.count_model = yet::CountModel::kFixed;  // the paper's benchmark setup
  config.seed = 2012;
  return yet::generate_uniform_yet(config, scale.catalog_size);
}

/// Prints a machine-greppable series row shared by all figure benches:
///   [series] <figure>,<x-name>=<x>,<y-name>=<y>
inline void print_row(const char* figure, const char* x_name, double x, const char* y_name,
                      double y) {
  std::printf("[series] %s,%s=%g,%s=%.4f\n", figure, x_name, x, y_name, y);
}

inline void print_note(const char* text) { std::printf("[note] %s\n", text); }

// --- Machine-readable benchmark output ---------------------------------------
//
// Benches that track the perf trajectory across PRs write their measured
// points as a JSON array (e.g. bench_fused_tiling -> BENCH_fused.json); CI
// uploads the file as an artifact so regressions are visible run over run.

/// Build/host facts stamped into every BENCH_*.json as its `meta` object,
/// so artifacts from different CI legs (gcc vs clang, native vs baseline
/// SIMD) are comparable without reconstructing the leg from the file name.
inline std::string build_metadata_json() {
  std::string compiler =
#if defined(__clang__)
      "clang " + std::to_string(__clang_major__) + "." + std::to_string(__clang_minor__);
#elif defined(__GNUC__)
      "gcc " + std::to_string(__GNUC__) + "." + std::to_string(__GNUC_MINOR__);
#else
      "unknown";
#endif
  std::string simd;
  for (const core::SimdExtension extension :
       {core::SimdExtension::kScalar, core::SimdExtension::kSse2, core::SimdExtension::kAvx2,
        core::SimdExtension::kAvx512, core::SimdExtension::kNeon}) {
    if (!core::simd_extension_available(extension)) continue;
    if (!simd.empty()) simd += ",";
    simd += to_string(extension);
  }
  std::string meta = "{\"compiler\": \"" + compiler + "\"";
  meta += ", \"simd_extensions\": \"" + simd + "\"";
  meta += ", \"best_simd_extension\": \"" +
          std::string(to_string(core::best_simd_extension())) + "\"";
  meta += ", \"hardware_threads\": " + std::to_string(std::thread::hardware_concurrency());
  meta += std::string(", \"telemetry_enabled\": ") + (obs::enabled() ? "true" : "false");
  meta += ", \"full_scale\": " + std::string(full_scale() ? "true" : "false");
  meta += "}";
  return meta;
}

/// The current telemetry snapshot as a `"telemetry": {...}` JSON fragment
/// for a record's `extra` field (empty when collection is off, so records
/// measured without telemetry stay unchanged).
inline std::string telemetry_extra() {
  if (!obs::enabled()) return {};
  return "\"telemetry\": " +
         obs::snapshot_json_object(obs::TelemetryRegistry::global().snapshot());
}

/// One measured point: a (workload, engine/config) pair with its wall time
/// and its speedup over the sequential reference on the same workload.
/// `extra` is an optional pre-rendered JSON fragment of additional keys
/// (e.g. `"spills": 3, "faults": 12` from the sharded-YLT bench).
struct JsonRecord {
  std::string workload;
  std::string engine;
  double wall_seconds = 0.0;
  double speedup_vs_sequential = 0.0;
  std::string extra;
};

class JsonReport {
 public:
  void add(std::string workload, std::string engine, double wall_seconds,
           double speedup_vs_sequential, std::string extra = {}) {
    records_.push_back({std::move(workload), std::move(engine), wall_seconds,
                        speedup_vs_sequential, std::move(extra)});
  }

  /// Writes `{"meta": {...}, "records": [...]}` — the meta object stamps
  /// the build/host facts (build_metadata_json), the records array is the
  /// measured points. Returns false on I/O failure. Workload/engine strings
  /// are plain identifiers (no escaping needed).
  bool write(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) return false;
    std::fprintf(out, "{\"meta\": %s,\n \"records\": [\n", build_metadata_json().c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const JsonRecord& record = records_[i];
      std::fprintf(out,
                   "  {\"workload\": \"%s\", \"engine\": \"%s\", \"wall_seconds\": %.6f, "
                   "\"speedup_vs_sequential\": %.4f%s%s}%s\n",
                   record.workload.c_str(), record.engine.c_str(), record.wall_seconds,
                   record.speedup_vs_sequential, record.extra.empty() ? "" : ", ",
                   record.extra.c_str(), i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(out, "]}\n");
    return std::fclose(out) == 0;
  }

  std::size_t size() const noexcept { return records_.size(); }

 private:
  std::vector<JsonRecord> records_;
};

/// Extracts `--json PATH` (or `--json=PATH`) from argv, removing it so the
/// remaining flags can go to benchmark::Initialize (google benchmark
/// rejects flags it does not know). Returns `fallback` when absent.
inline std::string consume_json_flag(int* argc, char** argv, const char* fallback) {
  std::string path = fallback;
  int write_index = 1;
  for (int read_index = 1; read_index < *argc; ++read_index) {
    const char* arg = argv[read_index];
    if (std::strcmp(arg, "--json") == 0 && read_index + 1 < *argc) {
      path = argv[++read_index];
      continue;
    }
    if (std::strncmp(arg, "--json=", 7) == 0) {
      path = arg + 7;
      continue;
    }
    argv[write_index++] = argv[read_index];
  }
  *argc = write_index;
  return path;
}

}  // namespace are::bench
