// Figure 6a: total time for each implementation at its best tuning on the
// paper workload (1M trials x 1000 events x 15 ELTs):
//   sequential CPU  ~325 s (implied by 2.6x at 8 threads = 125 s)
//   OpenMP 8-core   ~125 s
//   basic GPU        38.47 s (3.2x over multicore)
//   optimised GPU    22.72 s (5.4x over multicore, ~15x over sequential)
//
// The CPU bars come from the perfmodel roofline (plus a measured series on
// this host); the GPU bars come from the simgpu device model.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "perfmodel/cpu_model.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void summary_measured(benchmark::State& state, int variant) {
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  for (auto _ : state) {
    core::YearLossTable ylt;
    switch (variant) {
      case 0: ylt = core::run_sequential(portfolio, yet_table); break;
      case 1: ylt = core::run_parallel(portfolio, yet_table, {0, {}, 256}); break;
      case 2: ylt = core::run_chunked(portfolio, yet_table, {4, 0}); break;
      default: break;
    }
    benchmark::DoNotOptimize(ylt);
  }
}

void print_model_summary() {
  const auto machine = perfmodel::MachineSpec::core_i7_2600();
  const auto device = simgpu::DeviceSpec::tesla_c2075();
  simgpu::WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;

  const double seq = perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 1).seconds;
  const double omp = perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 8).seconds;
  const double gpu_basic = simgpu::estimate_basic_kernel(device, shape, 256).seconds;
  const double gpu_opt = simgpu::estimate_chunked_kernel(device, shape, 192, 4).seconds;

  bench::print_note("Fig 6a model summary, paper workload:");
  bench::print_row("fig6a_model", "variant", 0, "sequential_seconds", seq);
  bench::print_row("fig6a_model", "variant", 1, "multicore8_seconds", omp);
  bench::print_row("fig6a_model", "variant", 2, "gpu_basic_seconds", gpu_basic);
  bench::print_row("fig6a_model", "variant", 3, "gpu_optimised_seconds", gpu_opt);
  std::printf("[note] ratios: basic GPU %.1fx vs multicore (paper 3.2x); optimised %.1fx "
              "(paper 5.4x); optimised %.1fx vs sequential (paper ~15x)\n",
              omp / gpu_basic, omp / gpu_opt, seq / gpu_opt);
}

}  // namespace

int main(int argc, char** argv) {
  print_model_summary();
  if (!bench::full_scale()) {
    bench::print_note("measured series at calibrated sub-scale; ARE_BENCH_FULL=1 for paper scale");
  }
  benchmark::RegisterBenchmark("fig6a/measured_sequential",
                               [](benchmark::State& s) { summary_measured(s, 0); })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("fig6a/measured_parallel_pool",
                               [](benchmark::State& s) { summary_measured(s, 1); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::RegisterBenchmark("fig6a/measured_chunked",
                               [](benchmark::State& s) { summary_measured(s, 2); })
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
