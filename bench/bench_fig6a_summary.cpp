// Figure 6a: total time for each implementation at its best tuning on the
// paper workload (1M trials x 1000 events x 15 ELTs):
//   sequential CPU  ~325 s (implied by 2.6x at 8 threads = 125 s)
//   OpenMP 8-core   ~125 s
//   basic GPU        38.47 s (3.2x over multicore)
//   optimised GPU    22.72 s (5.4x over multicore, ~15x over sequential)
//
// The CPU bars come from the perfmodel roofline (plus a measured series on
// this host); the GPU bars come from the simgpu device model.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_common.hpp"
#include "core/engine_registry.hpp"
#include "perfmodel/cpu_model.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

/// One measured series per registered bit-identical engine: the sweep is a
/// loop over the EngineRegistry, so a backend registered there shows up
/// here with zero bench changes.
void summary_measured(benchmark::State& state, const core::AnalysisConfig& config) {
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    benchmark::DoNotOptimize(ylt);
  }
}

void print_model_summary() {
  const auto machine = perfmodel::MachineSpec::core_i7_2600();
  const auto device = simgpu::DeviceSpec::tesla_c2075();
  simgpu::WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;

  const double seq = perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 1).seconds;
  const double omp = perfmodel::predict_cpu_time(1'000'000, 1000.0, 15.0, 1, machine, 8).seconds;
  const double gpu_basic = simgpu::estimate_basic_kernel(device, shape, 256).seconds;
  const double gpu_opt = simgpu::estimate_chunked_kernel(device, shape, 192, 4).seconds;

  bench::print_note("Fig 6a model summary, paper workload:");
  bench::print_row("fig6a_model", "variant", 0, "sequential_seconds", seq);
  bench::print_row("fig6a_model", "variant", 1, "multicore8_seconds", omp);
  bench::print_row("fig6a_model", "variant", 2, "gpu_basic_seconds", gpu_basic);
  bench::print_row("fig6a_model", "variant", 3, "gpu_optimised_seconds", gpu_opt);
  std::printf("[note] ratios: basic GPU %.1fx vs multicore (paper 3.2x); optimised %.1fx "
              "(paper 5.4x); optimised %.1fx vs sequential (paper ~15x)\n",
              omp / gpu_basic, omp / gpu_opt, seq / gpu_opt);
}

}  // namespace

int main(int argc, char** argv) {
  print_model_summary();
  if (!bench::full_scale()) {
    bench::print_note("measured series at calibrated sub-scale; ARE_BENCH_FULL=1 for paper scale");
  }
  for (const auto& engine : core::EngineRegistry::global().descriptors()) {
    if (!engine.bit_identical_to_sequential || !engine.available_in_this_build) continue;
    core::AnalysisConfig config;
    config.engine = engine.kind;
    config.engine_name = engine.name;  // exact dispatch even if kinds repeat
    const std::string name = "fig6a/measured_" + engine.name;
    benchmark::RegisterBenchmark(name.c_str(),
                                 [config](benchmark::State& s) { summary_measured(s, config); })
        ->Unit(benchmark::kMillisecond)
        ->UseRealTime();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
