// Figure 2d: sequential single-core runtime vs. events per trial (paper:
// 800..1200 events, 1 layer, 15 ELTs, 100K trials; linear).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig2d(benchmark::State& state) {
  const double events = static_cast<double>(state.range(0));
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);
  // The paper uses 100K trials (a tenth of its headline count) for this
  // sweep; mirror that ratio.
  const yet::YearEventTable yet_table = bench::make_yet(kScale, kScale.trials / 10, events);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["events_per_trial"] = events;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 2d reproduction: runtime vs events per trial (80%..120% of "
      "base), 1 layer x 15 ELTs, trials/10. Paper reports linear scaling.");
  if (!bench::full_scale()) {
    bench::print_note("running at calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  // Paper sweeps 800..1200 with base 1000: the same 0.8x..1.2x band.
  for (int percent = 80; percent <= 120; percent += 10) {
    const auto events = static_cast<long>(kScale.events_per_trial * percent / 100);
    benchmark::RegisterBenchmark("fig2d/events", fig2d)
        ->Arg(events)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
