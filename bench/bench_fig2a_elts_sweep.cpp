// Figure 2a: sequential single-core runtime vs. average number of ELTs per
// layer (paper: varied 3..15 with 1 layer, 1M trials, 1000 events/trial;
// observed linear scaling).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void fig2a(benchmark::State& state) {
  const auto elts = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials, kScale.events_per_trial);
  const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, elts);

  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["elts_per_layer"] = static_cast<double>(elts);
  state.counters["lookups"] = static_cast<double>(
      core::predict_access_counts(portfolio, yet_table).elt_lookups);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 2a reproduction: runtime vs ELTs/layer (3..15), 1 layer. "
      "Paper reports linear scaling; compare the time column across rows.");
  if (!bench::full_scale()) {
    bench::print_note("running at calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  for (int elts = 3; elts <= 15; elts += 3) {
    benchmark::RegisterBenchmark("fig2a/elts", fig2a)->Arg(elts)->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
