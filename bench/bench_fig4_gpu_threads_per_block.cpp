// Figure 4: basic GPU kernel runtime vs. threads per CUDA block (paper:
// 128..640 on the Tesla C2075; at least 128 needed, best at 256,
// diminishing beyond). Reported from the simgpu device cost model; see
// DESIGN.md for the hardware substitution rationale.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are;

const simgpu::DeviceSpec kDevice = simgpu::DeviceSpec::tesla_c2075();

simgpu::WorkloadShape paper_workload() {
  simgpu::WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;
  return shape;
}

void fig4_model(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const simgpu::WorkloadShape shape = paper_workload();
  simgpu::KernelEstimate estimate;
  for (auto _ : state) {
    estimate = simgpu::estimate_basic_kernel(kDevice, shape, threads);
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["threads_per_block"] = threads;
  state.counters["predicted_seconds"] = estimate.seconds;
  state.counters["warp_occupancy"] = estimate.occupancy.warp_occupancy;
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "Fig 4 reproduction: basic GPU kernel, threads/block sweep on the "
      "modelled Tesla C2075, paper workload (1M x 1000 x 15).");
  for (int threads : {128, 192, 256, 320, 384, 448, 512, 576, 640}) {
    const auto estimate =
        simgpu::estimate_basic_kernel(kDevice, paper_workload(), threads);
    bench::print_row("fig4_model", "threads_per_block", threads, "seconds", estimate.seconds);
  }
  bench::print_note("paper reference: >=128 required, improvement at 256, flat beyond");

  for (int threads : {128, 256, 384, 512, 640}) {
    benchmark::RegisterBenchmark("fig4/model_threads", fig4_model)->Arg(threads);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
