// Figure 5b: optimised (chunked) GPU kernel runtime vs. threads per block
// at chunk size 4. Paper: threads range in warp multiples; with chunk 4
// the shared-memory budget caps the block at 192 threads; only a small
// gradual improvement as threads increase.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "simgpu/kernel_model.hpp"

namespace {

using namespace are;

const simgpu::DeviceSpec kDevice = simgpu::DeviceSpec::tesla_c2075();

simgpu::WorkloadShape paper_workload() {
  simgpu::WorkloadShape shape;
  shape.num_trials = 1'000'000;
  shape.events_per_trial = 1000.0;
  shape.elts_per_layer = 15.0;
  return shape;
}

void fig5b_model(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  simgpu::KernelEstimate estimate;
  for (auto _ : state) {
    estimate = simgpu::estimate_chunked_kernel(kDevice, paper_workload(), threads, 4);
    benchmark::DoNotOptimize(estimate);
  }
  state.counters["threads_per_block"] = threads;
  state.counters["predicted_seconds"] = estimate.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const int max_threads = simgpu::max_threads_for_chunk(kDevice, 4);
  std::printf("[note] max threads/block supported at chunk 4: %d (paper: 192)\n", max_threads);

  bench::print_note("Fig 5b reproduction: chunked kernel, threads/block sweep at chunk 4.");
  for (int threads = 32; threads <= max_threads; threads += 32) {
    const auto estimate = simgpu::estimate_chunked_kernel(kDevice, paper_workload(), threads, 4);
    bench::print_row("fig5b_model", "threads_per_block", threads, "seconds", estimate.seconds);
  }
  bench::print_note("paper reference: small gradual improvement up to the 192-thread cap");

  for (int threads = 32; threads <= max_threads; threads += 32) {
    benchmark::RegisterBenchmark("fig5b/model_threads", fig5b_model)->Arg(threads);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
