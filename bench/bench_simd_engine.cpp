// SIMD batch-execution engine vs. the scalar engines.
//
// The paper's Fig 6b attributes ~78% of aggregate-analysis time to ELT
// lookups and financial-term application — both data-parallel across
// trials. This bench measures how much of that the lane-parallel engine
// recovers on real hardware:
//
//   * simd/<ext>            — the simd engine at each compiled lane width,
//                             vs the seq / parallel / chunked engines on
//                             the Fig 2a direct-access workload
//   * simd_threads/<n>      — the simd x threads composition mode (lane
//                             parallelism inside each worker's trial block)
//   * generic lookup series — the non-gatherable (hash/sorted) path, where
//                             only the financial/layer phases vectorize
//
// The acceptance target is >= 2x over the sequential engine on the direct-access
// lookup path at Fig 2a scale on AVX2 hardware.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/simd_engine.hpp"
#include "simd/vec.hpp"

namespace {

using namespace are;
using bench::Scale;
using core::SimdExtension;

const Scale kScale = Scale::current();

// Fig 2a workload shape: one layer over 15 ELTs, direct-access tables.
constexpr std::size_t kEltsPerLayer = 15;

// Cache-resident variant: the same shape over a small (regional-peril)
// catalog whose 15 direct tables fit in L2 — the regime where lane
// parallelism pays fully, because out-of-cache runs are bound by miss
// latency that no lane width can hide (the paper's memory-access-bound
// conclusion, and why its scaling path is multi-core/GPU).
const Scale kCacheScale{/*catalog_size=*/20'000, kScale.trials, kScale.events_per_trial,
                        /*elt_entries=*/2'000};

const yet::YearEventTable& shared_yet() {
  static const yet::YearEventTable table =
      bench::make_yet(kScale, kScale.trials / 4, kScale.events_per_trial);
  return table;
}

const yet::YearEventTable& cache_yet() {
  static const yet::YearEventTable table =
      bench::make_yet(kCacheScale, kCacheScale.trials / 4, kCacheScale.events_per_trial);
  return table;
}

const core::Portfolio& direct_portfolio() {
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, kEltsPerLayer);
  return portfolio;
}

const core::Portfolio& cache_portfolio() {
  static const core::Portfolio portfolio = bench::make_portfolio(kCacheScale, 1, kEltsPerLayer);
  return portfolio;
}

const core::Portfolio& generic_portfolio() {
  static const core::Portfolio portfolio =
      bench::make_portfolio(kScale, 1, kEltsPerLayer, elt::LookupKind::kRobinHood);
  return portfolio;
}

void engine_sequential(benchmark::State& state) {
  for (auto _ : state) {
    auto ylt = bench::run(direct_portfolio(), shared_yet(), {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
}

void engine_parallel(benchmark::State& state) {
  for (auto _ : state) {
    auto ylt = bench::run(direct_portfolio(), shared_yet(), {.engine = core::EngineKind::kParallel});
    benchmark::DoNotOptimize(ylt);
  }
}

void engine_chunked(benchmark::State& state) {
  for (auto _ : state) {
    auto ylt = bench::run(direct_portfolio(), shared_yet(),
                          {.engine = core::EngineKind::kChunked, .num_threads = 1});
    benchmark::DoNotOptimize(ylt);
  }
}

void engine_simd(benchmark::State& state, SimdExtension extension, bool direct) {
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kSimd;
  config.num_threads = 1;
  config.simd_extension = extension;
  const core::Portfolio& portfolio = direct ? direct_portfolio() : generic_portfolio();
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, shared_yet(), config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["lanes"] = static_cast<double>(core::simd_lane_width(extension));
}

void engine_sequential_cached(benchmark::State& state) {
  for (auto _ : state) {
    auto ylt = bench::run(cache_portfolio(), cache_yet(), {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
}

void engine_simd_cached(benchmark::State& state, SimdExtension extension) {
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kSimd;
  config.num_threads = 1;
  config.simd_extension = extension;
  for (auto _ : state) {
    auto ylt = bench::run(cache_portfolio(), cache_yet(), config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["lanes"] = static_cast<double>(core::simd_lane_width(extension));
}

void engine_simd_threads(benchmark::State& state) {
  core::AnalysisConfig config;
  config.engine = core::EngineKind::kSimd;
  config.num_threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto ylt = bench::run(direct_portfolio(), shared_yet(), config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["lanes"] = static_cast<double>(core::simd_lane_width(
      core::resolve_simd_extension(direct_portfolio(), {config.num_threads, config.simd_extension})));
}

void engine_sequential_generic(benchmark::State& state) {
  for (auto _ : state) {
    auto ylt = bench::run(generic_portfolio(), shared_yet(), {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "SIMD batch engine on the Fig 2a workload shape (1 layer x 15 "
      "direct-access ELTs). Two regimes: 'simd/' runs the standard catalog "
      "(tables far exceed L2 -> memory-access bound, lanes roughly tie "
      "scalar and kAuto narrows to sse2), 'simd_cached/' runs a "
      "regional-peril catalog with L2-resident tables, where AVX2 exceeds "
      "the >= 2x-over-sequential acceptance target.");
  bench::print_note(
      (std::string("widest compiled extension: ") + std::string(are::simd::kBestName) + ", " +
       std::to_string(are::simd::kBestLanes) + " double lanes")
          .c_str());
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }

  benchmark::RegisterBenchmark("simd/sequential", engine_sequential)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("simd/parallel", engine_parallel)->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("simd/chunked", engine_chunked)->Unit(benchmark::kMillisecond);

  for (const SimdExtension extension :
       {SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (!core::simd_extension_available(extension)) continue;
    const std::string name = "simd/simd_" + std::string(core::to_string(extension));
    benchmark::RegisterBenchmark(name.c_str(), engine_simd, extension, /*direct=*/true)
        ->Unit(benchmark::kMillisecond);
  }

  // Cache-resident ELTs: where the >= 2x acceptance target is met.
  benchmark::RegisterBenchmark("simd_cached/sequential", engine_sequential_cached)
      ->Unit(benchmark::kMillisecond);
  for (const SimdExtension extension :
       {SimdExtension::kScalar, SimdExtension::kSse2, SimdExtension::kAvx2,
        SimdExtension::kAvx512, SimdExtension::kNeon}) {
    if (!core::simd_extension_available(extension)) continue;
    const std::string name = "simd_cached/simd_" + std::string(core::to_string(extension));
    benchmark::RegisterBenchmark(name.c_str(), engine_simd_cached, extension)
        ->Unit(benchmark::kMillisecond);
  }

  // simd x threads composition: lane parallelism inside each worker.
  for (const int threads : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark("simd/simd_threads", engine_simd_threads)
        ->Arg(threads)
        ->Unit(benchmark::kMillisecond);
  }

  // Non-gatherable lookup path: only financial/layer phases vectorize.
  benchmark::RegisterBenchmark("simd/sequential_robinhood", engine_sequential_generic)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("simd/simd_robinhood", engine_simd, SimdExtension::kAuto,
                               /*direct=*/false)
      ->Unit(benchmark::kMillisecond);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
