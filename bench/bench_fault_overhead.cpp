// Fault-injection overhead: the zero-cost claim, measured. An injection
// site costs one relaxed atomic load while the process is disarmed (the
// same gate discipline as obs::enabled()), and a mutex-guarded registry
// lookup per hit once *any* site is armed. This bench times the same
// engine pass three ways:
//
//   disarmed      nothing armed anywhere (the production default)
//   armed-other   an unrelated site armed — every hit at the measured
//                 sites now pays the registry lookup but never fires
//   armed-never   the kernel's own site armed with after:<huge>, the
//                 worst case that still completes (hit counting + trigger
//                 evaluation on the hot path, no injection)
//
// The interesting sites (kernel.alloc, shard.spill_write) are per-block /
// per-spill, far off the per-event hot path, so all three rows should be
// statistically identical — a visible gap is a regression in the gate.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"
#include "fault/fault_injection.hpp"

namespace {

using namespace are;
using Clock = std::chrono::steady_clock;

double measure(const core::Portfolio& portfolio, const yet::YearEventTable& yet_table) {
  // Median-ish of three passes: min is the usual bench convention here
  // (the cleanest pass, least scheduler noise).
  double best = 1e300;
  for (int pass = 0; pass < 3; ++pass) {
    const auto start = Clock::now();
    (void)bench::run(portfolio, yet_table, {.engine_name = "fused"});
    best = std::min(best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

}  // namespace

int main() {
  if (!bench::full_scale()) {
    bench::print_note("calibrated sub-scale; set ARE_BENCH_FULL=1 for paper scale");
  }
  const bench::Scale scale = bench::Scale::current();
  const core::Portfolio portfolio = bench::make_portfolio(scale, 4, 3);
  const yet::YearEventTable yet_table =
      bench::make_yet(scale, scale.trials, scale.events_per_trial);

  fault::FaultRegistry::global().disarm_all();
  bench::print_row("fault_overhead", "mode", 0, "seconds",
                   measure(portfolio, yet_table));
  bench::print_note("mode 0 = disarmed, 1 = armed-other, 2 = armed-never");

  {
    const fault::ScopedArm armed("service.socket=after:1000000000");
    bench::print_row("fault_overhead", "mode", 1, "seconds",
                     measure(portfolio, yet_table));
  }
  {
    const fault::ScopedArm armed("kernel.alloc=after:1000000000");
    bench::print_row("fault_overhead", "mode", 2, "seconds",
                     measure(portfolio, yet_table));
  }
  return 0;
}
