// Paper §IV discussion claims, reproduced quantitatively:
//
//  (1) "the optimised algorithm on the GPU performs a 1 million trial
//      aggregate simulation ... in just over 20 seconds" — supports
//      real-time pricing on the phone;
//  (2) "In many applications 50K trials may be sufficient in which case
//      sub one second response time can be achieved";
//  (3) "Aggregate analysis using 50K trials on complete portfolios
//      consisting of 5000 contracts can be completed in around 24 hours"
//      (sequential CPU; supports weekly portfolio updates);
//  (4) "If a complete portfolio analysis is required on a 1M trial basis
//      then a multi-GPU hardware platform would likely be required."
//
// (1)-(3) come from the calibrated models; (4) uses the multi-GPU
// extension to size the required platform. A measured 50K-trial re-quote
// on this host is also included.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "perfmodel/cpu_model.hpp"
#include "simgpu/multi_gpu.hpp"

namespace {

using namespace are;

const simgpu::DeviceSpec kDevice = simgpu::DeviceSpec::tesla_c2075();
constexpr std::size_t kCatalog = 2'000'000;

simgpu::WorkloadShape shape(std::uint64_t trials, std::uint64_t layers) {
  simgpu::WorkloadShape workload;
  workload.num_trials = trials;
  workload.events_per_trial = 1000.0;
  workload.elts_per_layer = 15.0;
  workload.num_layers = layers;
  return workload;
}

void measured_requote_50k(benchmark::State& state) {
  // A 50K-trial single-layer re-quote on this host (the engine the models
  // are calibrated against). Sub-scale events/trial to stay within bench
  // time; the [series] lines carry the paper-scale story.
  const bench::Scale scale = bench::Scale::current();
  static const yet::YearEventTable yet_table = bench::make_yet(scale, 50'000, 100.0);
  static const core::Portfolio portfolio = bench::make_portfolio(scale, 1, 15);
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kParallel});
    benchmark::DoNotOptimize(ylt);
  }
}

}  // namespace

int main(int argc, char** argv) {
  // (1) 1M-trial single contract on one GPU.
  const double one_contract_1m =
      simgpu::estimate_chunked_kernel(kDevice, shape(1'000'000, 1), 192, 4).seconds;
  bench::print_row("discussion", "claim", 1, "gpu_1m_trials_seconds", one_contract_1m);
  bench::print_note("paper: 'just over 20 seconds' for 1M trials on the optimised GPU");

  // (2) 50K-trial single contract on one GPU.
  const double one_contract_50k =
      simgpu::estimate_chunked_kernel(kDevice, shape(50'000, 1), 192, 4).seconds;
  bench::print_row("discussion", "claim", 2, "gpu_50k_trials_seconds", one_contract_50k);
  bench::print_note("paper: 'sub one second response time' at 50K trials");

  // (3) 5000-contract portfolio at 50K trials, sequential CPU.
  const auto machine = perfmodel::MachineSpec::core_i7_2600();
  const double portfolio_cpu_hours =
      perfmodel::predict_cpu_time(50'000, 1000.0, 15.0, 5000, machine, 1).seconds / 3600.0;
  bench::print_row("discussion", "claim", 3, "portfolio_50k_cpu_hours", portfolio_cpu_hours);
  bench::print_note("paper: 'around 24 hours' for 5000 contracts x 50K trials");

  // (4) 5000-contract portfolio at 1M trials: how many GPUs for overnight
  // (12h) and for the same 24h budget?
  const auto portfolio_1m = shape(1'000'000, 5000);
  const double one_gpu_hours =
      simgpu::estimate_multi_gpu(kDevice, portfolio_1m, 1, 192, 4, kCatalog).seconds / 3600.0;
  bench::print_row("discussion", "claim", 4, "portfolio_1m_one_gpu_hours", one_gpu_hours);
  const int gpus_for_24h = simgpu::devices_for_target(kDevice, portfolio_1m, 24.0 * 3600.0,
                                                      192, 4, kCatalog, 256);
  const int gpus_for_12h = simgpu::devices_for_target(kDevice, portfolio_1m, 12.0 * 3600.0,
                                                      192, 4, kCatalog, 256);
  bench::print_row("discussion", "claim", 4, "gpus_for_24h", gpus_for_24h);
  bench::print_row("discussion", "claim", 4, "gpus_for_12h", gpus_for_12h);
  bench::print_note("paper: 'a multi-GPU hardware platform would likely be required'");

  benchmark::RegisterBenchmark("discussion/measured_requote_50k_trials", measured_requote_50k)
      ->Unit(benchmark::kMillisecond)
      ->UseRealTime();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
