// Ablation: chunking on the CPU. The paper notes "a number of approaches
// were attempted, including the chunking method described later for GPUs,
// but were not successful in achieving a high speedup on our multi-core
// CPU". This bench compares the plain sequential engine against the
// chunked engine across chunk sizes on the host CPU: chunking should be
// roughly neutral (small scratch buffers stay in L1 either way), which is
// exactly the paper's finding.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace {

using namespace are;
using bench::Scale;

const Scale kScale = Scale::current();

void cpu_plain(benchmark::State& state) {
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, {.engine = core::EngineKind::kSequential});
    benchmark::DoNotOptimize(ylt);
  }
}

void cpu_chunked(benchmark::State& state) {
  const auto chunk = static_cast<std::size_t>(state.range(0));
  static const yet::YearEventTable yet_table =
      bench::make_yet(kScale, kScale.trials / 2, kScale.events_per_trial);
  static const core::Portfolio portfolio = bench::make_portfolio(kScale, 1, 15);

  core::AnalysisConfig config;
  config.engine = core::EngineKind::kChunked;
  config.chunk_size = chunk;
  config.num_threads = 1;
  for (auto _ : state) {
    auto ylt = bench::run(portfolio, yet_table, config);
    benchmark::DoNotOptimize(ylt);
  }
  state.counters["chunk"] = static_cast<double>(chunk);
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_note(
      "CPU chunking ablation: the paper found chunking unhelpful on the "
      "CPU (its benefit is a GPU shared-memory effect). Expect the chunked "
      "rows to bracket the plain row within ~20%.");
  benchmark::RegisterBenchmark("ablation/cpu_plain", cpu_plain)->Unit(benchmark::kMillisecond);
  for (int chunk : {1, 4, 16, 64, 256}) {
    benchmark::RegisterBenchmark("ablation/cpu_chunked", cpu_chunked)
        ->Arg(chunk)
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
